//! Latent-factor synthetic interaction generator.
//!
//! The paper's datasets cannot be bundled, so experiments run on synthetic
//! equivalents with the same *shape*: the generator plants a low-rank
//! user–item affinity structure (so collaborative-filtering models have
//! signal to learn, and a stronger model — NGCF/LightGCN — can beat a
//! weaker one — NeuMF/MF), a power-law item popularity (so "confidence"
//! style frequency heuristics behave as on real data), and a skewed
//! profile-length distribution (so per-client upload sizes and the
//! federated/centralized gap mirror the real sparsity levels).
//!
//! Generation model, per user `u` with latent `p_u ~ N(0, I_d)`:
//!
//! 1. profile length `L_u ∝ avg_len · LogNormal(0, len_sigma)`, rescaled so
//!    the total interaction count hits the preset target;
//! 2. item weights `w_j = pop_j · exp(sharpness · ⟨p_u, q_j⟩/√d)` where
//!    `pop_j` follows a Zipf-like law with exponent `pop_exponent`;
//! 3. `L_u` items are drawn without replacement via Efraimidis–Spirakis
//!    weighted reservoir keys.

use crate::dataset::Dataset;
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};

/// Configuration of the synthetic generator.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    pub name: String,
    pub num_users: usize,
    pub num_items: usize,
    /// Total interaction target (the generator lands within ~1%).
    pub target_interactions: usize,
    /// Rank of the planted affinity structure.
    pub latent_dim: usize,
    /// Zipf exponent of item popularity (0 = uniform).
    pub pop_exponent: f64,
    /// How strongly the planted affinity drives choices (0 = popularity
    /// only). Around 1.0–1.5 gives learnable but noisy preferences.
    pub affinity_sharpness: f64,
    /// Log-normal sigma of profile lengths (0 = everyone identical).
    pub len_sigma: f64,
    /// Minimum interactions per user — keeps every client trainable and
    /// able to donate a test item under the 8:2 split.
    pub min_profile_len: usize,
}

impl SyntheticConfig {
    /// A reasonable default shape for ad-hoc experiments.
    pub fn new(name: impl Into<String>, num_users: usize, num_items: usize, avg_len: f64) -> Self {
        Self {
            name: name.into(),
            num_users,
            num_items,
            target_interactions: (num_users as f64 * avg_len).round() as usize,
            latent_dim: 16,
            pop_exponent: 0.9,
            affinity_sharpness: 1.2,
            len_sigma: 0.6,
            min_profile_len: 5,
        }
    }

    /// Generates the dataset.
    pub fn generate(&self, rng: &mut impl Rng) -> Dataset {
        assert!(self.num_users > 0 && self.num_items > 0, "empty dataset requested");
        assert!(
            self.min_profile_len <= self.num_items,
            "min_profile_len {} exceeds item count {}",
            self.min_profile_len,
            self.num_items
        );
        let d = self.latent_dim;
        let normal = Normal::new(0.0f64, 1.0).expect("unit normal");

        // Item latents and popularity. Popularity ranks are shuffled so
        // item id order carries no signal.
        let item_latent: Vec<Vec<f64>> =
            (0..self.num_items).map(|_| (0..d).map(|_| normal.sample(rng)).collect()).collect();
        let mut pop_rank: Vec<usize> = (0..self.num_items).collect();
        shuffle(&mut pop_rank, rng);
        let log_pop: Vec<f64> = (0..self.num_items)
            .map(|j| -self.pop_exponent * ((pop_rank[j] + 1) as f64).ln())
            .collect();

        // Profile lengths, rescaled to the interaction target.
        let lens = self.profile_lengths(rng);

        let inv_sqrt_d = 1.0 / (d as f64).sqrt();
        // assemble straight into the CSR arena: one reusable keyed buffer,
        // one reusable sorted-profile buffer, no per-user heap lists
        let total_hint: usize = lens.iter().sum();
        let mut builder =
            Dataset::builder(self.name.clone(), self.num_items, self.num_users, total_hint);
        let mut items: Vec<u32> = Vec::with_capacity(self.num_items);
        let mut keyed: Vec<(f64, u32)> = Vec::with_capacity(self.num_items);
        for &len in &lens {
            let user_latent: Vec<f64> = (0..d).map(|_| normal.sample(rng)).collect();
            keyed.clear();
            for j in 0..self.num_items {
                let affinity: f64 =
                    user_latent.iter().zip(&item_latent[j]).map(|(a, b)| a * b).sum::<f64>()
                        * inv_sqrt_d;
                let log_w = log_pop[j] + self.affinity_sharpness * affinity;
                // Efraimidis–Spirakis: key = ln(U)/w  (take the largest
                // keys). In log space: key = ln(-ln U) - ln w; we take the
                // *smallest*, equivalently negate. Guard U ∈ (0,1).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let key = (-u.ln()).ln() - log_w;
                keyed.push((key, j as u32));
            }
            let take = len.min(self.num_items);
            keyed.select_nth_unstable_by(take.saturating_sub(1), |a, b| {
                a.0.partial_cmp(&b.0).expect("finite keys")
            });
            items.clear();
            items.extend(keyed[..take].iter().map(|&(_, j)| j));
            items.sort_unstable();
            builder.push_user(&items);
        }
        builder.finish()
    }

    /// Draws per-user profile lengths summing approximately to the target.
    fn profile_lengths(&self, rng: &mut impl Rng) -> Vec<usize> {
        let lognormal = LogNormal::new(0.0, self.len_sigma).expect("valid sigma");
        let raw: Vec<f64> = (0..self.num_users).map(|_| lognormal.sample(rng)).collect();
        let raw_sum: f64 = raw.iter().sum();
        let scale = self.target_interactions as f64 / raw_sum;
        raw.iter()
            .map(|&w| ((w * scale).round() as usize).max(self.min_profile_len).min(self.num_items))
            .collect()
    }
}

/// Fisher–Yates shuffle (avoids pulling in rand's `SliceRandom` trait just
/// for one call site).
fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SyntheticConfig {
        SyntheticConfig::new("test", 60, 120, 12.0)
    }

    #[test]
    fn hits_interaction_target_roughly() {
        let d = small_cfg().generate(&mut crate::test_rng(1));
        let target = 60.0 * 12.0;
        let got = d.num_interactions() as f64;
        assert!(
            (got - target).abs() / target < 0.25,
            "interactions {got} too far from target {target}"
        );
    }

    #[test]
    fn respects_min_profile_len() {
        let mut cfg = small_cfg();
        cfg.min_profile_len = 4;
        let d = cfg.generate(&mut crate::test_rng(2));
        for u in 0..d.num_users() {
            assert!(d.user_items(u as u32).len() >= 4, "user {u} too short");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small_cfg().generate(&mut crate::test_rng(3));
        let b = small_cfg().generate(&mut crate::test_rng(3));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_cfg().generate(&mut crate::test_rng(4));
        let b = small_cfg().generate(&mut crate::test_rng(5));
        assert_ne!(a, b);
    }

    #[test]
    fn popularity_is_skewed() {
        let mut cfg = small_cfg();
        cfg.pop_exponent = 1.2;
        cfg.affinity_sharpness = 0.0; // isolate the popularity effect
        let d = cfg.generate(&mut crate::test_rng(6));
        let mut counts = d.item_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = counts[..counts.len() / 10].iter().sum();
        let total: usize = counts.iter().sum();
        assert!(
            top_decile as f64 > 0.25 * total as f64,
            "top 10% items hold only {top_decile}/{total} interactions — not skewed"
        );
    }

    #[test]
    fn affinity_plants_learnable_structure() {
        // With sharpness on, co-interacted items should overlap more across
        // users than under pure popularity sampling: measure mean pairwise
        // Jaccard of user profiles against the sharpness=0 version.
        fn mean_jaccard(d: &Dataset) -> f64 {
            let mut total = 0.0;
            let mut n = 0.0;
            for a in 0..d.num_users().min(30) {
                for b in (a + 1)..d.num_users().min(30) {
                    let sa = d.user_items(a as u32);
                    let sb = d.user_items(b as u32);
                    let inter = sa.iter().filter(|i| sb.binary_search(i).is_ok()).count();
                    let union = sa.len() + sb.len() - inter;
                    if union > 0 {
                        total += inter as f64 / union as f64;
                        n += 1.0;
                    }
                }
            }
            total / n
        }
        let mut sharp = small_cfg();
        sharp.affinity_sharpness = 2.0;
        sharp.pop_exponent = 0.3;
        let mut flat = sharp.clone();
        flat.affinity_sharpness = 0.0;
        let d_sharp = sharp.generate(&mut crate::test_rng(7));
        let d_flat = flat.generate(&mut crate::test_rng(7));
        // sharp profiles cluster users into taste groups; some pairs overlap
        // heavily, raising the mean
        assert!(
            mean_jaccard(&d_sharp) > 0.8 * mean_jaccard(&d_flat),
            "affinity structure collapsed: sharp {} vs flat {}",
            mean_jaccard(&d_sharp),
            mean_jaccard(&d_flat)
        );
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty() {
        let cfg = SyntheticConfig::new("x", 0, 10, 5.0);
        let _ = cfg.generate(&mut crate::test_rng(0));
    }
}
