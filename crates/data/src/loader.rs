//! Parsers for the original dataset formats.
//!
//! Experiments default to the synthetic presets, but users who have the
//! real dumps can load them here:
//!
//! * [`parse_movielens_100k`] — tab-separated `user \t item \t rating \t ts`
//!   (the `u.data` file). Ratings are binarized (any rating counts as an
//!   interaction, as the paper "transform\[s\] all positive ratings to 1").
//! * [`parse_pairs_csv`] — generic `user,item` CSV with optional header,
//!   covering the common Steam-200K / Gowalla exports.
//!
//! Ids in the source files are arbitrary; both parsers reindex users and
//! items densely in first-appearance order.

use crate::dataset::Dataset;
use std::collections::HashMap;

/// Errors produced while parsing dataset files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not have enough columns.
    MissingColumn { line: usize },
    /// A column could not be parsed as an id.
    BadField { line: usize, field: String },
    /// The file contained no interactions.
    Empty,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingColumn { line } => write!(f, "line {line}: missing column"),
            ParseError::BadField { line, field } => {
                write!(f, "line {line}: cannot parse id from {field:?}")
            }
            ParseError::Empty => write!(f, "no interactions found"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Densely reindexes raw ids in first-appearance order.
#[derive(Default)]
struct Reindexer {
    map: HashMap<String, u32>,
}

impl Reindexer {
    /// Resolves a raw id, allocating only on first appearance.
    fn resolve(&mut self, raw: &str) -> u32 {
        if let Some(&id) = self.map.get(raw) {
            return id;
        }
        let id = self.map.len() as u32;
        self.map.insert(raw.to_string(), id);
        id
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

fn build(
    name: &str,
    pairs: Vec<(u32, u32)>,
    users: usize,
    items: usize,
) -> Result<Dataset, ParseError> {
    if pairs.is_empty() {
        return Err(ParseError::Empty);
    }
    // the counting-sort CSR constructor assembles the arena in one pass
    Ok(Dataset::from_pairs(name, users, items, pairs))
}

/// Parses MovieLens-100K `u.data` content (`user \t item \t rating \t ts`).
pub fn parse_movielens_100k(name: &str, content: &str) -> Result<Dataset, ParseError> {
    let mut users = Reindexer::default();
    let mut items = Reindexer::default();
    let mut pairs = Vec::with_capacity(content.lines().size_hint().0);
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut cols = line.split_whitespace();
        let user = cols.next().ok_or(ParseError::MissingColumn { line: lineno + 1 })?;
        let item = cols.next().ok_or(ParseError::MissingColumn { line: lineno + 1 })?;
        for field in [user, item] {
            if field.parse::<u64>().is_err() {
                return Err(ParseError::BadField { line: lineno + 1, field: field.to_string() });
            }
        }
        pairs.push((users.resolve(user), items.resolve(item)));
    }
    build(name, pairs, users.len(), items.len())
}

/// Parses `user,item[,...]` CSV content; a non-numeric first row is treated
/// as a header and skipped.
pub fn parse_pairs_csv(name: &str, content: &str) -> Result<Dataset, ParseError> {
    let mut users = Reindexer::default();
    let mut items = Reindexer::default();
    let mut pairs = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut cols = line.split(',').map(str::trim);
        let user = cols.next().ok_or(ParseError::MissingColumn { line: lineno + 1 })?;
        let item = cols.next().ok_or(ParseError::MissingColumn { line: lineno + 1 })?;
        if lineno == 0 && (user.parse::<u64>().is_err() || item.parse::<u64>().is_err()) {
            continue; // header
        }
        if user.is_empty() || item.is_empty() {
            return Err(ParseError::MissingColumn { line: lineno + 1 });
        }
        pairs.push((users.resolve(user), items.resolve(item)));
    }
    build(name, pairs, users.len(), items.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movielens_roundtrip() {
        let content = "196\t242\t3\t881250949\n186\t302\t3\t891717742\n196\t377\t1\t878887116\n";
        let d = parse_movielens_100k("ml", content).unwrap();
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.num_items(), 3);
        assert_eq!(d.num_interactions(), 3);
        // user 196 → 0 with items 242→0, 377→2
        assert_eq!(d.user_items(0), &[0, 2]);
    }

    #[test]
    fn movielens_rejects_garbage() {
        let err = parse_movielens_100k("ml", "abc\tdef\t3\t0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadField { line: 1, .. }));
    }

    #[test]
    fn movielens_rejects_short_line() {
        let err = parse_movielens_100k("ml", "196\n").unwrap_err();
        assert_eq!(err, ParseError::MissingColumn { line: 1 });
    }

    #[test]
    fn csv_with_header() {
        let content = "user_id,item_id\n10,20\n10,21\n11,20\n";
        let d = parse_pairs_csv("csv", content).unwrap();
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.num_items(), 2);
        assert_eq!(d.num_interactions(), 3);
    }

    #[test]
    fn csv_without_header() {
        let d = parse_pairs_csv("csv", "1,2\n3,4\n").unwrap();
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.num_interactions(), 2);
    }

    #[test]
    fn empty_input_errors() {
        assert_eq!(parse_pairs_csv("csv", "\n\n").unwrap_err(), ParseError::Empty);
    }

    #[test]
    fn duplicate_interactions_collapse() {
        let d = parse_pairs_csv("csv", "1,2\n1,2\n1,2\n").unwrap();
        assert_eq!(d.num_interactions(), 1);
    }
}
