//! Negative sampling.
//!
//! Implicit-feedback training pairs every positive item with sampled
//! non-interacted "negative" items; the paper uses a 1:4 positive:negative
//! ratio throughout.

use rand::Rng;

/// Samples up to `count` *distinct* negative item ids uniformly from the
/// complement of the **sorted** positive set. The trained pool `V_t` is a
/// set of items, so duplicates are never returned; when the complement has
/// fewer than `count` items, all of it is returned (shuffled).
///
/// # Panics
/// If every item is positive (no negatives exist) and `count > 0`.
pub fn sample_negatives(
    sorted_positives: &[u32],
    num_items: usize,
    count: usize,
    rng: &mut impl Rng,
) -> Vec<u32> {
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    sample_negatives_into(sorted_positives, num_items, count, rng, &mut out, &mut seen);
    out
}

/// [`sample_negatives`] into caller-owned buffers: `out` receives the
/// sampled negatives, `seen` is rejection-sampling workspace. Both are
/// cleared on entry and keep their capacity, so a steady-state caller
/// (one buffer pair per scheduler worker) allocates nothing. Draw-for-draw
/// identical to [`sample_negatives`].
pub fn sample_negatives_into(
    sorted_positives: &[u32],
    num_items: usize,
    count: usize,
    rng: &mut impl Rng,
    out: &mut Vec<u32>,
    seen: &mut std::collections::HashSet<u32>,
) {
    debug_assert!(sorted_positives.windows(2).all(|w| w[0] < w[1]), "positives must be sorted");
    out.clear();
    let available = num_items - sorted_positives.len();
    assert!(
        count == 0 || available > 0,
        "cannot sample negatives: all {num_items} items are positive"
    );
    let count = count.min(available);
    // Dense candidate pool when the request covers most of the complement
    // — or when the complement itself is a small slice of the catalogue:
    // at ≥75% positive density a rejection draw mostly hits positives, so
    // expected draws per accept (`num_items / available`) blow up even for
    // tiny requests. One O(num_items) scan is cheaper and bounds the RNG
    // draws at exactly `count`.
    if count * 3 >= available || available * 4 <= num_items {
        out.extend((0..num_items as u32).filter(|c| sorted_positives.binary_search(c).is_err()));
        for i in 0..count {
            let j = rng.gen_range(i..out.len());
            out.swap(i, j);
        }
        out.truncate(count);
        return;
    }
    seen.clear();
    while out.len() < count {
        let candidate = rng.gen_range(0..num_items as u32);
        if sorted_positives.binary_search(&candidate).is_err() && seen.insert(candidate) {
            out.push(candidate);
        }
    }
}

/// The labelled training pool of one client for one epoch: all positives
/// plus `ratio`× sampled negatives, shuffled. Labels are 1.0 / 0.0.
///
/// This is the "trained item pool `V_t`" of the paper (§III-B2): *both*
/// the positives and the sampled negatives count as trained items.
pub fn build_training_pool(
    sorted_positives: &[u32],
    num_items: usize,
    ratio: usize,
    rng: &mut impl Rng,
) -> Vec<(u32, f32)> {
    let negatives =
        sample_negatives(sorted_positives, num_items, sorted_positives.len() * ratio, rng);
    let mut pool: Vec<(u32, f32)> = sorted_positives
        .iter()
        .map(|&i| (i, 1.0))
        .chain(negatives.into_iter().map(|i| (i, 0.0)))
        .collect();
    // Fisher–Yates so batches mix labels
    for i in (1..pool.len()).rev() {
        let j = rng.gen_range(0..=i);
        pool.swap(i, j);
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negatives_avoid_positives_and_are_distinct() {
        let pos = vec![1, 3, 5, 7];
        let negs = sample_negatives(&pos, 100, 50, &mut crate::test_rng(1));
        assert_eq!(negs.len(), 50);
        let mut sorted = negs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50, "duplicates returned");
        for n in negs {
            assert!(pos.binary_search(&n).is_err(), "sampled positive {n}");
            assert!(n < 100);
        }
    }

    #[test]
    fn oversized_request_returns_whole_complement() {
        let pos = vec![0, 2];
        let negs = sample_negatives(&pos, 6, 50, &mut crate::test_rng(9));
        let mut sorted = negs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 3, 4, 5], "complement is {{1,3,4,5}}");
    }

    #[test]
    fn zero_count_is_empty() {
        assert!(sample_negatives(&[0, 1], 2, 0, &mut crate::test_rng(2)).is_empty());
    }

    #[test]
    #[should_panic(expected = "all 3 items are positive")]
    fn rejects_saturated_item_space() {
        let _ = sample_negatives(&[0, 1, 2], 3, 1, &mut crate::test_rng(3));
    }

    /// Wraps an RNG and counts the raw draws it serves — the probe the
    /// high-density regression test uses to pin sampling cost.
    struct CountingRng<R> {
        inner: R,
        calls: u64,
    }

    impl<R: rand::RngCore> rand::RngCore for CountingRng<R> {
        fn next_u32(&mut self) -> u32 {
            self.calls += 1;
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.calls += 1;
            self.inner.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.calls += 1;
            self.inner.fill_bytes(dest)
        }
    }

    #[test]
    fn high_density_sampling_uses_bounded_rng_draws() {
        // 90% positive density, small request: the old crossover
        // (`count * 3 >= available` alone) kept this on the rejection path,
        // where ~9 of 10 draws hit a positive — tens of wasted draws for a
        // 20-item request. The density cutoff must route it dense-fill,
        // which draws the RNG exactly once per returned negative.
        let positives: Vec<u32> = (0..900).collect();
        let mut rng = CountingRng { inner: crate::test_rng(7), calls: 0 };
        let negs = sample_negatives(&positives, 1000, 20, &mut rng);
        assert_eq!(negs.len(), 20);
        for &n in &negs {
            assert!((900..1000).contains(&n), "sampled a positive: {n}");
        }
        let mut sorted = negs;
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "duplicates returned");
        // one gen_range per kept negative; allow a small widening slack
        assert!(rng.calls <= 2 * 20, "{} RNG draws for a 20-negative request", rng.calls);
    }

    #[test]
    fn pool_has_correct_ratio_and_labels() {
        let pos = vec![2, 4, 9];
        let pool = build_training_pool(&pos, 30, 4, &mut crate::test_rng(4));
        assert_eq!(pool.len(), 3 + 12);
        let positives: Vec<u32> = pool.iter().filter(|(_, l)| *l == 1.0).map(|&(i, _)| i).collect();
        let mut sorted = positives.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, pos, "every positive appears exactly once");
        for &(i, l) in &pool {
            if l == 0.0 {
                assert!(pos.binary_search(&i).is_err());
            }
        }
    }

    #[test]
    fn pool_is_shuffled() {
        let pos: Vec<u32> = (0..20).map(|i| i * 2).collect();
        let pool = build_training_pool(&pos, 100, 1, &mut crate::test_rng(5));
        let first_labels: Vec<f32> = pool.iter().take(20).map(|&(_, l)| l).collect();
        assert!(first_labels.contains(&0.0), "positives still at the front — pool not shuffled");
    }
}
