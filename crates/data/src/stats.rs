//! Table II style dataset statistics.

use crate::dataset::Dataset;
use serde::Serialize;

/// Summary statistics of a dataset, matching the rows of the paper's
/// Table II.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DatasetStats {
    pub name: String,
    pub users: usize,
    pub items: usize,
    pub interactions: usize,
    /// Mean interactions per user ("Average Lengths").
    pub avg_length: f64,
    /// Filled fraction of the user×item grid, in percent.
    pub density_pct: f64,
}

impl DatasetStats {
    pub fn of(dataset: &Dataset) -> Self {
        Self {
            name: dataset.name().to_string(),
            users: dataset.num_users(),
            items: dataset.num_items(),
            interactions: dataset.num_interactions(),
            avg_length: dataset.avg_profile_len(),
            density_pct: dataset.density() * 100.0,
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<24} users={:<6} items={:<6} interactions={:<8} avg_len={:<6.1} density={:.2}%",
            self.name, self.users, self.items, self.interactions, self.avg_length, self.density_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_dataset() {
        let d = Dataset::from_user_items("x", 10, vec![vec![0, 1, 2], vec![5]]);
        let s = DatasetStats::of(&d);
        assert_eq!(s.users, 2);
        assert_eq!(s.items, 10);
        assert_eq!(s.interactions, 4);
        assert!((s.avg_length - 2.0).abs() < 1e-12);
        assert!((s.density_pct - 20.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_single_line() {
        let d = Dataset::from_user_items("x", 4, vec![vec![0]]);
        let line = DatasetStats::of(&d).to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("users=1"));
    }
}
