//! Property-based tests of the autograd engine: analytic gradients must
//! match finite differences for arbitrary shapes and values, and the CSR
//! algebra must agree with its dense counterpart.

use proptest::prelude::*;
use ptf_tensor::prelude::*;
use ptf_tensor::ParamId;

/// A small matrix with bounded entries (away from activation kinks).
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-0.9f32..0.9, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn numeric_grad(params: &mut Params, id: ParamId, loss: impl Fn(&Params) -> f32) -> Matrix {
    let eps = 1e-2f32;
    let (rows, cols) = params.get(id).shape();
    let mut out = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            let orig = params.get(id).get(i, j);
            params.get_mut(id).set(i, j, orig + eps);
            let hi = loss(params);
            params.get_mut(id).set(i, j, orig - eps);
            let lo = loss(params);
            params.get_mut(id).set(i, j, orig);
            out.set(i, j, (hi - lo) / (2.0 * eps));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_chain_gradient_matches_fd(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
    ) {
        let mut p = Params::new();
        let ia = p.push("a", a);
        let ib = p.push("b", b);
        let build = |p: &Params| {
            let mut g = Graph::new(p);
            let av = g.param(ia);
            let bv = g.param(ib);
            let c = g.matmul(av, bv);
            let s = g.tanh(c);
            let l = g.mean_all(s);
            g.scalar(l)
        };
        let grads = {
            let mut g = Graph::new(&p);
            let av = g.param(ia);
            let bv = g.param(ib);
            let c = g.matmul(av, bv);
            let s = g.tanh(c);
            let l = g.mean_all(s);
            g.backward(l)
        };
        for id in [ia, ib] {
            let analytic = grads.dense(id, &p);
            let numeric = numeric_grad(&mut p, id, build);
            prop_assert!(analytic.max_abs_diff(&numeric) < 2e-2,
                "param {} grad mismatch", id.index());
        }
    }

    #[test]
    fn bce_gradient_matches_fd(
        logits in matrix_strategy(5, 1),
        targets in proptest::collection::vec(0.0f32..=1.0, 5),
    ) {
        let mut p = Params::new();
        let id = p.push("x", logits);
        let t = targets.clone();
        let build = move |p: &Params| {
            let mut g = Graph::new(p);
            let x = g.param(id);
            let l = g.bce_with_logits(x, &t);
            g.scalar(l)
        };
        let grads = {
            let mut g = Graph::new(&p);
            let x = g.param(id);
            let l = g.bce_with_logits(x, &targets);
            g.backward(l)
        };
        let analytic = grads.dense(id, &p);
        let numeric = numeric_grad(&mut p, id, build);
        prop_assert!(analytic.max_abs_diff(&numeric) < 2e-2);
    }

    #[test]
    fn gather_rowdot_gradient_matches_fd(
        emb in matrix_strategy(6, 3),
        idx in proptest::collection::vec(0u32..6, 1..8),
    ) {
        let mut p = Params::new();
        let id = p.push("emb", emb);
        let idx2 = idx.clone();
        let build = move |p: &Params| {
            let mut g = Graph::new(p);
            let e = g.param(id);
            let rows = g.gather(e, &idx2);
            let s = g.sigmoid(rows);
            let l = g.sum_all(s);
            g.scalar(l)
        };
        let grads = {
            let mut g = Graph::new(&p);
            let e = g.param(id);
            let rows = g.gather(e, &idx);
            let s = g.sigmoid(rows);
            let l = g.sum_all(s);
            g.backward(l)
        };
        let analytic = grads.dense(id, &p);
        let numeric = numeric_grad(&mut p, id, build);
        prop_assert!(analytic.max_abs_diff(&numeric) < 2e-2);
    }

    #[test]
    fn csr_agrees_with_dense(
        triplets in proptest::collection::vec(
            (0u32..5, 0u32..7, -2.0f32..2.0), 0..20),
        x in matrix_strategy(7, 3),
    ) {
        let m = Csr::from_triplets(5, 7, &triplets);
        let sparse = m.matmul(&x);
        let dense = m.to_dense().matmul(&x);
        prop_assert!(sparse.max_abs_diff(&dense) < 1e-4);
        // transpose round-trips
        let tt = m.transpose().transpose().to_dense();
        let md = m.to_dense();
        prop_assert_eq!(tt.as_slice(), md.as_slice());
    }

    #[test]
    fn adam_never_produces_nan(
        grad in matrix_strategy(4, 3),
        lr in 1e-4f32..0.5,
    ) {
        let mut p = Params::new();
        let id = p.push("w", Matrix::zeros(4, 3));
        let mut adam = Adam::with_defaults(&p, lr);
        for _ in 0..10 {
            let mut g = Grads::new_for(&p);
            *g.slot_mut(id) = Some(GradBuf::Dense(grad.clone()));
            adam.step(&mut p, &g);
        }
        prop_assert!(p.all_finite());
    }

    #[test]
    fn transpose_preserves_frobenius(m in matrix_strategy(4, 6)) {
        prop_assert!((m.frob_sq() - m.transpose().frob_sq()).abs() < 1e-3);
    }
}
