//! Backend parity for the compute kernels.
//!
//! The contract under test (documented in `ptf_tensor::kernels`):
//!
//! * **element-wise** kernels (`axpy`, `add_assign`, `mf_sgd_update`,
//!   `adam_update`) are **bit-identical** across backends — the chunked
//!   Vector form changes traversal order, not per-element arithmetic;
//! * **reductions** (`dot`, `sum`, `frob_sq`) may reassociate in the
//!   Vector backend, so they agree to a small tolerance on finite input
//!   and both propagate NaN;
//! * every kernel is a pure function of its slice arguments — running it
//!   twice on the same backend is bit-identical (the determinism story:
//!   no thread-count dependence can exist in a function that never
//!   threads).
//!
//! Lengths are drawn from `0..=64`, which covers the empty slice, every
//! sub-chunk length, the exact 8-lane width, and non-multiple-of-8
//! remainders.

use proptest::prelude::*;
use ptf_tensor::kernels::{
    adam_update_with, add_assign_with, axpy_with, dot_with, frob_sq_with, mf_sgd_update_with,
    sum_with, Backend,
};

const S: Backend = Backend::Scalar;
const V: Backend = Backend::Vector;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, 0..=max_len)
}

fn finite_pair(max_len: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    // equal-length pair: draw `a` at 0..=max_len, draw `b` full-length and
    // trim it to match (the vendored shim has no `prop_flat_map`)
    (
        proptest::collection::vec(-2.0f32..2.0, 0..=max_len),
        proptest::collection::vec(-2.0f32..2.0, max_len..=max_len),
    )
        .prop_map(|(a, mut b)| {
            b.truncate(a.len());
            (a, b)
        })
}

/// Reassociation tolerance for an `n ≤ 64` reduction of values in ±4.
fn close(a: f32, b: f32, scale: f32) -> bool {
    (a - b).abs() <= 1e-4 * (1.0 + scale)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dot_backends_agree_on_finite_input(ab in finite_pair(64)) {
        let (a, b) = ab;
        let s = dot_with(S, &a, &b);
        let v = dot_with(V, &a, &b);
        let scale: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        prop_assert!(close(s, v, scale), "scalar {s} vs vector {v}");
        // purity: re-running either backend is bit-identical
        prop_assert_eq!(s.to_bits(), dot_with(S, &a, &b).to_bits());
        prop_assert_eq!(v.to_bits(), dot_with(V, &a, &b).to_bits());
    }

    #[test]
    fn sum_and_frob_backends_agree_on_finite_input(x in finite_vec(64)) {
        let scale: f32 = x.iter().map(|v| v.abs()).sum();
        prop_assert!(close(sum_with(S, &x), sum_with(V, &x), scale));
        prop_assert!(close(frob_sq_with(S, &x), frob_sq_with(V, &x), scale * 4.0));
        prop_assert_eq!(sum_with(V, &x).to_bits(), sum_with(V, &x).to_bits());
    }

    #[test]
    fn reductions_propagate_nan(
        x in proptest::collection::vec(-2.0f32..2.0, 1..=64),
        pos in 0usize..1024,
    ) {
        let mut x = x;
        let at = pos % x.len();
        x[at] = f32::NAN;
        prop_assert!(sum_with(S, &x).is_nan() && sum_with(V, &x).is_nan());
        prop_assert!(dot_with(S, &x, &x).is_nan() && dot_with(V, &x, &x).is_nan());
        prop_assert!(frob_sq_with(S, &x).is_nan() && frob_sq_with(V, &x).is_nan());
    }

    #[test]
    fn axpy_is_bit_identical_across_backends(
        xy in finite_pair(64),
        alpha in -2.0f32..2.0,
        poison in 0usize..128,
    ) {
        // element-wise kernels must agree bit-for-bit even through NaN/Inf
        // (poison plants an Inf in roughly half the cases)
        let (mut x, y) = xy;
        if poison < 64 && !x.is_empty() {
            let at = poison % x.len();
            x[at] = f32::INFINITY;
        }
        let (mut ys, mut yv) = (y.clone(), y);
        axpy_with(S, alpha, &x, &mut ys);
        axpy_with(V, alpha, &x, &mut yv);
        let (sb, vb): (Vec<u32>, Vec<u32>) =
            (ys.iter().map(|v| v.to_bits()).collect(), yv.iter().map(|v| v.to_bits()).collect());
        prop_assert_eq!(sb, vb);
    }

    #[test]
    fn add_assign_is_bit_identical_across_backends(xy in finite_pair(64)) {
        let (x, y) = xy;
        let (mut ys, mut yv) = (y.clone(), y);
        add_assign_with(S, &mut ys, &x);
        add_assign_with(V, &mut yv, &x);
        prop_assert_eq!(
            ys.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            yv.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mf_sgd_update_is_bit_identical_across_backends(
        uv in finite_pair(64),
        err in -1.0f32..1.0,
        lr in 0.0f32..0.1,
        reg in 0.0f32..0.1,
    ) {
        let (u, v) = uv;
        let (mut us, mut vs) = (u.clone(), v.clone());
        let (mut uv, mut vv) = (u, v);
        mf_sgd_update_with(S, &mut us, &mut vs, err, lr, reg);
        mf_sgd_update_with(V, &mut uv, &mut vv, err, lr, reg);
        prop_assert_eq!(
            us.iter().chain(&vs).map(|x| x.to_bits()).collect::<Vec<_>>(),
            uv.iter().chain(&vv).map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn adam_update_is_bit_identical_across_backends(
        pg in finite_pair(64),
        lr in 1e-5f32..0.01,
        t in 1u32..100,
    ) {
        let (p, g) = pg;
        let (beta1, beta2, eps) = (0.9f32, 0.999f32, 1e-8f32);
        let (bc1, bc2) = (1.0 - beta1.powi(t as i32), 1.0 - beta2.powi(t as i32));
        let n = p.len();
        let zero = vec![0.5f32; n];
        let (mut ps, mut ms, mut vs) = (p.clone(), zero.clone(), zero.clone());
        let (mut pv, mut mv, mut vv) = (p, zero.clone(), zero);
        adam_update_with(S, &mut ps, &mut ms, &mut vs, &g, lr, beta1, beta2, eps, bc1, bc2);
        adam_update_with(V, &mut pv, &mut mv, &mut vv, &g, lr, beta1, beta2, eps, bc1, bc2);
        prop_assert_eq!(
            ps.iter().chain(&ms).chain(&vs).map(|x| x.to_bits()).collect::<Vec<_>>(),
            pv.iter().chain(&mv).chain(&vv).map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn empty_slices_are_identities_on_both_backends() {
    for b in [S, V] {
        assert_eq!(dot_with(b, &[], &[]), 0.0);
        assert_eq!(sum_with(b, &[]), 0.0);
        assert_eq!(frob_sq_with(b, &[]), 0.0);
        let mut y: [f32; 0] = [];
        axpy_with(b, 2.0, &[], &mut y);
        add_assign_with(b, &mut y, &[]);
        let (mut u, mut v): ([f32; 0], [f32; 0]) = ([], []);
        mf_sgd_update_with(b, &mut u, &mut v, 0.5, 0.1, 0.01);
    }
}

#[test]
fn exact_lane_multiples_and_remainders_agree() {
    // deterministic spot-check around the 8-lane boundary: 7 (pure tail),
    // 8 (one exact chunk), 9 (chunk + 1), 16, 17, 24
    for n in [7usize, 8, 9, 16, 17, 24] {
        let a: Vec<f32> = (0..n).map(|k| 0.1 * k as f32 - 0.7).collect();
        let b: Vec<f32> = (0..n).map(|k| 0.3 - 0.05 * k as f32).collect();
        let s = dot_with(S, &a, &b);
        let v = dot_with(V, &a, &b);
        assert!((s - v).abs() <= 1e-4, "n={n}: scalar {s} vs vector {v}");
    }
}

#[test]
fn infinities_reach_the_accumulator_in_both_backends() {
    // a single +Inf with no cancelling −Inf must surface as +Inf however
    // the reduction is associated
    let mut x = vec![1.0f32; 19];
    x[11] = f32::INFINITY;
    assert_eq!(sum_with(S, &x), f32::INFINITY);
    assert_eq!(sum_with(V, &x), f32::INFINITY);
    assert_eq!(frob_sq_with(S, &x), f32::INFINITY);
    assert_eq!(frob_sq_with(V, &x), f32::INFINITY);
}
