//! Checkpoint-envelope robustness for [`RowTable`].
//!
//! The vendored JSON layer routes bare integers through `f64`, which
//! silently rounds u64 values ≥ 2⁵³ — and a rounded init seed would
//! re-derive *different* lazy rows after a restore, corrupting the
//! scoped-client parity contract without any visible error. The wire
//! format therefore carries the seed as a hex string; these tests pin
//! that property for the whole upper seed range, and that malformed
//! envelopes come back as `Err`, never a panic.

use proptest::prelude::*;
use ptf_tensor::{ItemScope, RowTable};

const NUM_ITEMS: usize = 64;

/// Round-trips a table and asserts that rows derived lazily *after* the
/// restore are bit-identical to rows derived by the original — the part a
/// rounded seed would silently break.
fn assert_lazy_rows_survive(mut original: RowTable, json: &str) {
    let mut restored: RowTable = serde_json::from_str(json).expect("round-trip failed");
    assert_eq!(restored.num_items(), original.num_items());
    assert_eq!(restored.cols(), original.cols());
    assert_eq!(restored.len(), original.len());
    for id in 0..NUM_ITEMS as u32 {
        let a = original.ensure(id);
        let b = restored.ensure(id);
        assert_eq!(
            original.row(a),
            restored.row(b),
            "row {id} diverged after restore — seed not preserved exactly"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Seeds at and above 2⁵³ — exactly the range `f64` cannot represent
    /// exactly — survive a JSON round-trip bit-for-bit, for both sparse
    /// and dense seed-derived tables.
    #[test]
    fn big_seeds_survive_the_json_round_trip(
        seed in (1u64 << 53)..=u64::MAX,
        ids in proptest::collection::btree_set(0..NUM_ITEMS as u32, 1..12),
    ) {
        let ids: Vec<u32> = ids.into_iter().collect();
        let sparse = RowTable::from_scope(&ItemScope::rows(NUM_ITEMS, ids), 5, 4, 0.1, seed);
        let json = serde_json::to_string(&sparse).unwrap();
        prop_assert!(
            json.contains(&format!("{seed:016x}")),
            "seed must travel as a hex string: {json}"
        );
        assert_lazy_rows_survive(sparse, &json);

        let dense = RowTable::from_scope(&ItemScope::Full(NUM_ITEMS), 5, 4, 0.1, seed);
        let json = serde_json::to_string(&dense).unwrap();
        assert_lazy_rows_survive(dense, &json);
    }

    /// Arbitrary garbage in the seed field must surface as a deserialize
    /// error — not a panic, and never a silently defaulted table.
    #[test]
    fn malformed_seed_envelopes_error_instead_of_panicking(
        bytes in proptest::collection::vec(0u8..=255, 0..24),
    ) {
        // hex digits, plausible typos (g, x, 0x…, ±, whitespace) and noise,
        // all JSON-string-safe so the envelope itself stays well-formed
        const ALPHABET: &[u8] = b"0123456789abcdefABCDEFgxXz+- ._#";
        let s: String =
            bytes.iter().map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char).collect();
        let envelope = format!(
            r#"{{"num_items":4,"cols":2,"ids":[0,2],"data":[0,0,0,0],"init_seed":"{s}","init_std":0.1,"init_cols":2}}"#
        );
        let parsed = serde_json::from_str::<RowTable>(&envelope);
        // oracle: the seed field is valid iff it is parseable hex; anything
        // else must come back as a clean Err (reaching this assert at all
        // proves no panic)
        let valid_hex = u64::from_str_radix(&s, 16).is_ok();
        prop_assert_eq!(parsed.is_ok(), valid_hex, "envelope: {}", envelope);
    }
}

/// The non-property cases worth pinning by name: seed fields that decode
/// but must still be rejected, and the wire shapes around them.
#[test]
fn seed_envelope_edge_cases() {
    let envelope = |seed_json: &str| {
        format!(
            r#"{{"num_items":4,"cols":2,"ids":[0,2],"data":[0,0,0,0],"init_seed":{seed_json},"init_std":0.1,"init_cols":2}}"#
        )
    };
    // a JSON *number* seed is exactly the f64-rounding hazard — reject it
    assert!(serde_json::from_str::<RowTable>(&envelope("9007199254740993")).is_err());
    // overflowing and non-hex strings error cleanly
    assert!(serde_json::from_str::<RowTable>(&envelope("\"1ffffffffffffffff\"")).is_err());
    assert!(serde_json::from_str::<RowTable>(&envelope("\"0xg\"")).is_err());
    assert!(serde_json::from_str::<RowTable>(&envelope("\"\"")).is_err());
    assert!(serde_json::from_str::<RowTable>(&envelope("null")).is_err());
    // the canonical 16-digit form round-trips
    assert!(serde_json::from_str::<RowTable>(&envelope("\"ffffffffffffffff\"")).is_ok());
}
