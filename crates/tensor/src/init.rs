//! Weight initializers.

use crate::matrix::Matrix;
use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// I.i.d. normal entries N(0, std²).
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
    let dist = Normal::new(0.0f32, std).expect("std must be finite and non-negative");
    Matrix::from_fn(rows, cols, |_, _| dist.sample(rng))
}

/// Xavier/Glorot uniform: U(−a, a) with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Used for the dense layers of NeuMF and the NGCF propagation weights, as
/// in the reference implementations of those models.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let dist = Uniform::new_inclusive(-a, a);
    Matrix::from_fn(rows, cols, |_, _| dist.sample(rng))
}

/// Stream discriminator separating per-row init draws from every other
/// consumer of [`crate::rowtable::derive_seed`].
const ROW_INIT_STREAM: u64 = 0x0520_4E49_5449_414C;

/// Fills `out` with i.i.d. `N(0, std²)` entries drawn from the RNG
/// derived from `(seed, id)` — the per-row initializer behind
/// [`crate::rowtable::RowTable`].
///
/// Because the draw depends only on `(seed, id, std, out.len())`, a row
/// holds bit-identical values whether it was materialized eagerly in a
/// full table, eagerly in a scoped table, or lazily on first touch — the
/// keystone of scoped-vs-full bit-comparability.
pub fn derived_normal_row(seed: u64, id: u32, std: f32, out: &mut [f32]) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(crate::rowtable::derive_seed(
        seed,
        id as u64,
        ROW_INIT_STREAM,
    ));
    let dist = Normal::new(0.0f32, std).expect("std must be finite and non-negative");
    for x in out.iter_mut() {
        *x = dist.sample(&mut rng);
    }
}

/// A `rows × cols` matrix whose row `r` carries the derived init of
/// global id `ids(r)` — the eager bulk form of [`derived_normal_row`].
pub fn derived_normal_rows(
    ids: impl ExactSizeIterator<Item = u32>,
    cols: usize,
    std: f32,
    seed: u64,
) -> Matrix {
    let rows = ids.len();
    let mut m = Matrix::zeros(rows, cols);
    for (r, id) in ids.enumerate() {
        derived_normal_row(seed, id, std, m.row_mut(r));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_has_roughly_requested_moments() {
        let mut rng = crate::test_rng(1);
        let m = normal(200, 50, 0.5, &mut rng);
        let n = m.len() as f32;
        let mean = m.sum() / n;
        let var = m.as_slice().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = crate::test_rng(2);
        let m = xavier_uniform(64, 32, &mut rng);
        let a = (6.0f32 / 96.0).sqrt();
        assert!(m.as_slice().iter().all(|x| x.abs() <= a));
        // and actually spreads out
        assert!(m.as_slice().iter().any(|x| x.abs() > a * 0.5));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = normal(4, 4, 1.0, &mut crate::test_rng(42));
        let b = normal(4, 4, 1.0, &mut crate::test_rng(42));
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
