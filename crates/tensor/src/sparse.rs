//! CSR sparse matrices for graph propagation.
//!
//! NGCF and LightGCN repeatedly multiply a fixed, symmetrically normalized
//! bipartite adjacency matrix with a dense embedding matrix. [`Csr`] stores
//! that adjacency once; [`PropagationMatrix`] additionally caches the
//! transpose so the autograd backward pass (`dX = Aᵀ·dY`) pays no per-batch
//! transposition cost.

use crate::matrix::Matrix;

/// Compressed sparse row matrix with `f32` values.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    /// Row pointer array, `rows + 1` entries.
    indptr: Vec<usize>,
    /// Column index per stored value.
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from (row, col, value) triplets.
    ///
    /// Duplicate coordinates are summed. Triplets may arrive in any order.
    ///
    /// # Panics
    /// If a coordinate is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f32)]) -> Self {
        for &(r, c, _) in triplets {
            assert!((r as usize) < rows, "row {r} out of bounds ({rows} rows)");
            assert!((c as usize) < cols, "col {c} out of bounds ({cols} cols)");
        }
        // counting sort by row
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r as usize + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let indptr_raw = counts.clone();
        let mut order = vec![0usize; triplets.len()];
        let mut cursor = indptr_raw.clone();
        for (i, &(r, _, _)) in triplets.iter().enumerate() {
            order[cursor[r as usize]] = i;
            cursor[r as usize] += 1;
        }

        // within each row, sort by column and merge duplicates
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut values: Vec<f32> = Vec::with_capacity(triplets.len());
        indptr.push(0);
        let mut row_buf: Vec<(u32, f32)> = Vec::new();
        for r in 0..rows {
            row_buf.clear();
            for &t in &order[indptr_raw[r]..indptr_raw[r + 1]] {
                let (_, c, v) = triplets[t];
                row_buf.push((c, v));
            }
            row_buf.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row_buf.len() {
                let (c, mut v) = row_buf[i];
                let mut j = i + 1;
                while j < row_buf.len() && row_buf[j].0 == c {
                    v += row_buf[j].1;
                    j += 1;
                }
                indices.push(c);
                values.push(v);
                i = j;
            }
            indptr.push(indices.len());
        }
        Self { rows, cols, indptr, indices, values }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates `(row, col, value)` over stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            { self.indptr[r]..self.indptr[r + 1] }
                .map(move |k| (r as u32, self.indices[k], self.values[k]))
        })
    }

    /// Sparse × dense product `self × rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_into(rhs, &mut out);
        out
    }

    /// In-place [`Csr::matmul`]: overwrites `out` with `self × rhs`,
    /// reusing its buffer.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        out.reset_to(self.rows, rhs.cols());
        self.matmul_acc(rhs, out);
    }

    /// Accumulating sparse × dense product `out += self × rhs`. The
    /// per-row accumulation is serial over stored entries (an axpy per
    /// entry), so the result is bit-identical across kernel backends.
    pub fn matmul_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows(),
            "spmm: {}x{} × {}x{} shape mismatch",
            self.rows,
            self.cols,
            rhs.rows(),
            rhs.cols()
        );
        let d = rhs.cols();
        assert_eq!(out.shape(), (self.rows, d), "spmm: out shape mismatch");
        for r in 0..self.rows {
            let out_row = &mut out.as_mut_slice()[r * d..(r + 1) * d];
            for k in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[k] as usize;
                let v = self.values[k];
                let rhs_row = &rhs.as_slice()[c * d..(c + 1) * d];
                crate::kernels::axpy(v, rhs_row, out_row);
            }
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts.clone();
        for r in 0..self.rows {
            for k in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[k] as usize;
                let slot = cursor[c];
                cursor[c] += 1;
                indices[slot] = r as u32;
                values[slot] = self.values[k];
            }
        }
        Csr { rows: self.cols, cols: self.rows, indptr: counts, indices, values }
    }

    /// Materializes as a dense matrix (tests and tiny graphs only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            let cur = m.get(r as usize, c as usize);
            m.set(r as usize, c as usize, cur + v);
        }
        m
    }

    /// Per-row number of stored entries (node degree for adjacency use).
    pub fn row_degrees(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.indptr[r + 1] - self.indptr[r]).collect()
    }
}

/// An adjacency matrix plus its cached transpose, shared by every
/// autograd graph that propagates over it.
///
/// The buffers are behind [`std::sync::Arc`] (not `Rc`): a model holding
/// a `PropagationMatrix` is scored from many evaluation threads at once
/// and moved onto scheduler workers, so the shared handles must be
/// thread-safe. The matrices themselves are immutable after construction.
#[derive(Clone, Debug)]
pub struct PropagationMatrix {
    forward: std::sync::Arc<Csr>,
    backward: std::sync::Arc<Csr>,
}

impl PropagationMatrix {
    pub fn new(m: Csr) -> Self {
        let backward = std::sync::Arc::new(m.transpose());
        Self { forward: std::sync::Arc::new(m), backward }
    }

    /// For symmetric matrices (e.g. symmetrically normalized adjacency)
    /// the transpose equals the matrix itself; this constructor skips the
    /// transposition and shares one buffer.
    pub fn new_symmetric(m: Csr) -> Self {
        assert_eq!(m.rows(), m.cols(), "symmetric propagation matrix must be square");
        let rc = std::sync::Arc::new(m);
        Self { forward: rc.clone(), backward: rc }
    }

    pub fn forward(&self) -> &std::sync::Arc<Csr> {
        &self.forward
    }

    pub fn backward(&self) -> &std::sync::Arc<Csr> {
        &self.backward
    }

    pub fn rows(&self) -> usize {
        self.forward.rows()
    }

    pub fn cols(&self) -> usize {
        self.forward.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        Csr::from_triplets(3, 3, &[(2, 1, 4.0), (0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0)])
    }

    #[test]
    fn triplets_sorted_and_indexed() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]);
    }

    #[test]
    fn duplicate_triplets_accumulate() {
        let m = Csr::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.iter().next(), Some((0, 1, 3.5)));
    }

    #[test]
    fn spmm_matches_dense() {
        let m = sample();
        let x = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let sparse = m.matmul(&x);
        let dense = m.to_dense().matmul(&x);
        assert_eq!(sparse.as_slice(), dense.as_slice());
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.to_dense().as_slice(), m.to_dense().transpose().as_slice());
        // double transpose is identity
        assert_eq!(t.transpose().to_dense().as_slice(), m.to_dense().as_slice());
    }

    #[test]
    fn identity_propagates_unchanged() {
        let x = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(Csr::identity(3).matmul(&x).as_slice(), x.as_slice());
    }

    #[test]
    fn matmul_into_reuses_dirty_buffer() {
        let m = sample();
        let x = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let mut out = Matrix::full(1, 7, 9.0); // wrong shape + dirty contents
        m.matmul_into(&x, &mut out);
        assert_eq!(out.as_slice(), m.matmul(&x).as_slice());
        // the accumulating form adds on top
        m.matmul_acc(&x, &mut out);
        let mut doubled = m.matmul(&x);
        doubled.add_assign(&m.matmul(&x));
        assert_eq!(out.as_slice(), doubled.as_slice());
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = Csr::from_triplets(3, 3, &[]);
        assert_eq!(m.nnz(), 0);
        let x = Matrix::full(3, 2, 1.0);
        assert_eq!(m.matmul(&x).as_slice(), &[0.0; 6]);
    }

    #[test]
    fn degrees() {
        assert_eq!(sample().row_degrees(), vec![2, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds() {
        let _ = Csr::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }
}
