//! Env-selectable compute kernels for the workspace's f32 hot loops.
//!
//! Every dot product, AXPY, reduction and fused SGD update in the
//! workspace routes through this module, which dispatches between two
//! backends:
//!
//! * [`Backend::Scalar`] — sequential reference loops
//!   (`PTF_KERNEL=scalar`). Reductions accumulate left-to-right in one
//!   chain.
//! * [`Backend::Vector`] — the default: **reductions** ([`dot`],
//!   [`sum`], [`frob_sq`]) use 8-lane chunked accumulation with
//!   independent per-lane partials, the one transform LLVM cannot apply
//!   itself (reassociating an f32 sum changes rounding), and the one
//!   that makes a dim-32 dot ~2.5× faster here. Plain `a * b + acc`
//!   per lane; `f32::mul_add` is deliberately avoided because baseline
//!   x86-64 has no FMA and it lowers to a libm call. Chunked results
//!   may differ from the scalar chain at the ulp level (see
//!   `tests/kernel_parity.rs`).
//!
//! **Element-wise kernels** ([`axpy`], [`add_assign`],
//! [`mf_sgd_update`], [`adam_update`]) are backend-independent — both
//! backends run the same sequential loop and are therefore trivially
//! bit-identical. This is a measured decision, not an omission: an
//! element-wise loop has no reassociation barrier, so LLVM already
//! auto-vectorizes the plain form; an earlier hand-chunked 8-lane
//! variant of these kernels benchmarked 1.5–1.8× *slower* end-to-end
//! on the axpy-heavy autograd models (NGCF 8.4 → 14.5 ms/batch) — the
//! chunk/remainder bookkeeping defeated the optimizer on the many
//! short slices the tape emits.
//!
//! Both backends are pure functions of their inputs: results are
//! independent of thread count, so the determinism suite passes under
//! either. The backend is process-global, read once from `PTF_KERNEL`
//! on first use; benchmarks may override it with [`set_backend`] to A/B
//! both in one process (single-threaded phases only — flipping the
//! backend mid-flight changes results, not soundness).

use std::sync::atomic::{AtomicU8, Ordering};

/// A compute-kernel implementation choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Sequential reference loops (bit-exact baseline, `PTF_KERNEL=scalar`).
    Scalar,
    /// Chunked 8-lane accumulation (the default).
    Vector,
}

impl Backend {
    /// Stable name, as accepted by `PTF_KERNEL` and recorded by benches.
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Vector => "vector",
        }
    }
}

const UNSET: u8 = 0;
const SCALAR: u8 = 1;
const VECTOR: u8 = 2;

static BACKEND: AtomicU8 = AtomicU8::new(UNSET);

/// The active backend: `PTF_KERNEL=scalar` forces the reference loops,
/// anything else (including unset) selects the vectorized default. Read
/// lazily on first use and cached; [`set_backend`] overrides it.
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        SCALAR => Backend::Scalar,
        VECTOR => Backend::Vector,
        _ => {
            let b = match std::env::var("PTF_KERNEL").as_deref() {
                Ok("scalar") => Backend::Scalar,
                _ => Backend::Vector,
            };
            set_backend(b);
            b
        }
    }
}

/// Overrides the process-global backend (benchmark A/B knob). Callers
/// must not flip this while other threads are inside kernel calls.
pub fn set_backend(b: Backend) {
    let v = match b {
        Backend::Scalar => SCALAR,
        Backend::Vector => VECTOR,
    };
    BACKEND.store(v, Ordering::Relaxed);
}

const LANES: usize = 8;

/// Dot product `⟨a, b⟩` (reduction: backends may differ by ulps).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_with(backend(), a, b)
}

/// [`dot`] with an explicit backend (parity tests, reference checks).
#[inline]
pub fn dot_with(backend: Backend, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot length mismatch");
    match backend {
        Backend::Scalar => a.iter().zip(b).map(|(&x, &y)| x * y).sum(),
        Backend::Vector => {
            // short slices (the tape's length-1 output layers) skip the
            // lane machinery entirely — the result is the same pure
            // left-to-right chain the remainder loop would compute
            if a.len() < LANES {
                return a.iter().zip(b).map(|(&x, &y)| x * y).sum();
            }
            let mut acc = [0.0f32; LANES];
            let ca = a.chunks_exact(LANES);
            let cb = b.chunks_exact(LANES);
            let (ra, rb) = (ca.remainder(), cb.remainder());
            for (xa, xb) in ca.zip(cb) {
                for l in 0..LANES {
                    acc[l] += xa[l] * xb[l];
                }
            }
            let mut tail = 0.0f32;
            for (&x, &y) in ra.iter().zip(rb) {
                tail += x * y;
            }
            reduce_lanes(&acc) + tail
        }
    }
}

/// Sum of all elements (reduction: backends may differ by ulps).
#[inline]
pub fn sum(x: &[f32]) -> f32 {
    sum_with(backend(), x)
}

/// [`sum`] with an explicit backend.
#[inline]
pub fn sum_with(backend: Backend, x: &[f32]) -> f32 {
    match backend {
        Backend::Scalar => x.iter().sum(),
        Backend::Vector => {
            if x.len() < LANES {
                return x.iter().sum();
            }
            let mut acc = [0.0f32; LANES];
            let chunks = x.chunks_exact(LANES);
            let rem = chunks.remainder();
            for c in chunks {
                for l in 0..LANES {
                    acc[l] += c[l];
                }
            }
            let mut tail = 0.0f32;
            for &v in rem {
                tail += v;
            }
            reduce_lanes(&acc) + tail
        }
    }
}

/// Squared Frobenius norm `Σ xᵢ²` (reduction: backends may differ by ulps).
#[inline]
pub fn frob_sq(x: &[f32]) -> f32 {
    frob_sq_with(backend(), x)
}

/// [`frob_sq`] with an explicit backend.
#[inline]
pub fn frob_sq_with(backend: Backend, x: &[f32]) -> f32 {
    match backend {
        Backend::Scalar => x.iter().map(|v| v * v).sum(),
        Backend::Vector => dot_with(Backend::Vector, x, x),
    }
}

/// `y += alpha * x` (element-wise: backend-independent, see module docs).
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    axpy_with(backend(), alpha, x, y)
}

/// [`axpy`] with an explicit backend (accepted for API uniformity —
/// element-wise kernels run the same loop under both).
#[inline]
pub fn axpy_with(_backend: Backend, alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (y, &x) in y.iter_mut().zip(x) {
        *y += alpha * x;
    }
}

/// `y += x` (element-wise: backend-independent, see module docs).
#[inline]
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    add_assign_with(backend(), y, x)
}

/// [`add_assign`] with an explicit backend (accepted for API
/// uniformity — element-wise kernels run the same loop under both).
#[inline]
pub fn add_assign_with(_backend: Backend, y: &mut [f32], x: &[f32]) {
    debug_assert_eq!(x.len(), y.len(), "add_assign length mismatch");
    for (y, &x) in y.iter_mut().zip(x) {
        *y += x;
    }
}

/// Fused per-sample MF SGD update from pre-step values (element-wise:
/// backend-independent, see module docs):
/// `uₖ ← uₖ − lr·(err·vₖ + reg·uₖ)`, `vₖ ← vₖ − lr·(err·uₖ + reg·vₖ)`.
#[inline]
pub fn mf_sgd_update(u: &mut [f32], v: &mut [f32], err: f32, lr: f32, reg: f32) {
    mf_sgd_update_with(backend(), u, v, err, lr, reg)
}

/// [`mf_sgd_update`] with an explicit backend (accepted for API
/// uniformity — element-wise kernels run the same loop under both).
#[inline]
pub fn mf_sgd_update_with(
    _backend: Backend,
    u: &mut [f32],
    v: &mut [f32],
    err: f32,
    lr: f32,
    reg: f32,
) {
    debug_assert_eq!(u.len(), v.len(), "mf_sgd_update length mismatch");
    for (u, v) in u.iter_mut().zip(v.iter_mut()) {
        let (uk, vk) = (*u, *v);
        *u = uk - lr * (err * vk + reg * uk);
        *v = vk - lr * (err * uk + reg * vk);
    }
}

/// Fused Adam slice update (element-wise: backend-independent, see
/// module docs): one pass updating first/second moments and the
/// parameter slice with precomputed bias corrections `bc1 = 1−β₁ᵗ`,
/// `bc2 = 1−β₂ᵗ`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn adam_update(
    p: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) {
    adam_update_with(backend(), p, m, v, g, lr, beta1, beta2, eps, bc1, bc2)
}

/// [`adam_update`] with an explicit backend (accepted for API
/// uniformity — element-wise kernels run the same loop under both).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn adam_update_with(
    _backend: Backend,
    p: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) {
    debug_assert!(p.len() == m.len() && m.len() == v.len() && v.len() == g.len());
    #[inline(always)]
    fn step(
        p: &mut f32,
        m: &mut f32,
        v: &mut f32,
        g: f32,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        bc1: f32,
        bc2: f32,
    ) {
        *m = beta1 * *m + (1.0 - beta1) * g;
        *v = beta2 * *v + (1.0 - beta2) * g * g;
        let m_hat = *m / bc1;
        let v_hat = *v / bc2;
        *p -= lr * m_hat / (v_hat.sqrt() + eps);
    }
    for k in 0..p.len() {
        step(&mut p[k], &mut m[k], &mut v[k], g[k], lr, beta1, beta2, eps, bc1, bc2);
    }
}

/// Pairwise lane reduction with a fixed tree order (independent of data).
#[inline]
fn reduce_lanes(acc: &[f32; LANES]) -> f32 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random f32 in roughly [-1, 1.5).
    fn lcg_vals(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.5 - 1.0
            })
            .collect()
    }

    /// Worst-case ulp distance budget for a reassociated n-term reduction.
    fn reduction_tol(terms: usize, magnitude: f32) -> f32 {
        (terms.max(1) as f32) * magnitude.max(1e-6) * f32::EPSILON * 4.0
    }

    #[test]
    fn dot_parity_across_dims_including_remainders() {
        for dim in 0..=64usize {
            let a = lcg_vals(dim, 3 + dim as u64);
            let b = lcg_vals(dim, 77 + dim as u64);
            let s = dot_with(Backend::Scalar, &a, &b);
            let v = dot_with(Backend::Vector, &a, &b);
            let mag: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            assert!(
                (s - v).abs() <= reduction_tol(dim, mag),
                "dim {dim}: scalar {s} vs vector {v}"
            );
        }
    }

    #[test]
    fn sum_and_frob_parity() {
        for dim in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 33, 63, 64] {
            let x = lcg_vals(dim, dim as u64);
            let mag: f32 = x.iter().map(|v| v.abs()).sum();
            let (ss, sv) = (sum_with(Backend::Scalar, &x), sum_with(Backend::Vector, &x));
            assert!((ss - sv).abs() <= reduction_tol(dim, mag), "sum dim {dim}: {ss} vs {sv}");
            let (fs, fv) = (frob_sq_with(Backend::Scalar, &x), frob_sq_with(Backend::Vector, &x));
            assert!((fs - fv).abs() <= reduction_tol(dim, mag), "frob dim {dim}: {fs} vs {fv}");
        }
    }

    #[test]
    fn elementwise_kernels_are_bit_identical_across_backends() {
        for dim in [0usize, 1, 5, 8, 13, 16, 24, 40, 64] {
            let x = lcg_vals(dim, 11);
            let base = lcg_vals(dim, 22);
            let mut ys = base.clone();
            let mut yv = base.clone();
            axpy_with(Backend::Scalar, 0.37, &x, &mut ys);
            axpy_with(Backend::Vector, 0.37, &x, &mut yv);
            assert_eq!(ys, yv, "axpy dim {dim}");
            add_assign_with(Backend::Scalar, &mut ys, &x);
            add_assign_with(Backend::Vector, &mut yv, &x);
            assert_eq!(ys, yv, "add_assign dim {dim}");

            let (mut us, mut vs) = (lcg_vals(dim, 33), lcg_vals(dim, 44));
            let (mut uv, mut vv) = (us.clone(), vs.clone());
            mf_sgd_update_with(Backend::Scalar, &mut us, &mut vs, 0.21, 0.05, 1e-4);
            mf_sgd_update_with(Backend::Vector, &mut uv, &mut vv, 0.21, 0.05, 1e-4);
            assert_eq!(us, uv, "mf u dim {dim}");
            assert_eq!(vs, vv, "mf v dim {dim}");

            let g = lcg_vals(dim, 55);
            let (mut p1, mut m1, mut v1) = (lcg_vals(dim, 66), lcg_vals(dim, 67), vec![0.1; dim]);
            let (mut p2, mut m2, mut v2) = (p1.clone(), m1.clone(), v1.clone());
            adam_update_with(
                Backend::Scalar,
                &mut p1,
                &mut m1,
                &mut v1,
                &g,
                1e-3,
                0.9,
                0.999,
                1e-8,
                0.1,
                0.01,
            );
            adam_update_with(
                Backend::Vector,
                &mut p2,
                &mut m2,
                &mut v2,
                &g,
                1e-3,
                0.9,
                0.999,
                1e-8,
                0.1,
                0.01,
            );
            assert_eq!(p1, p2, "adam p dim {dim}");
            assert_eq!(m1, m2, "adam m dim {dim}");
            assert_eq!(v1, v2, "adam v dim {dim}");
        }
    }

    #[test]
    fn nan_and_inf_lanes_propagate_in_both_backends() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            for pos in [0usize, 3, 8, 12] {
                let mut a = lcg_vals(13, 5);
                a[pos] = bad;
                let b = lcg_vals(13, 6);
                for be in [Backend::Scalar, Backend::Vector] {
                    let d = dot_with(be, &a, &b);
                    assert!(!d.is_finite() || d.is_nan(), "{be:?} dot swallowed {bad} at {pos}");
                    let s = sum_with(be, &a);
                    assert!(!s.is_finite() || s.is_nan(), "{be:?} sum swallowed {bad} at {pos}");
                }
            }
        }
    }

    #[test]
    fn empty_slices_are_identities() {
        for be in [Backend::Scalar, Backend::Vector] {
            assert_eq!(dot_with(be, &[], &[]), 0.0);
            assert_eq!(sum_with(be, &[]), 0.0);
            assert_eq!(frob_sq_with(be, &[]), 0.0);
            let mut y: [f32; 0] = [];
            axpy_with(be, 2.0, &[], &mut y);
            add_assign_with(be, &mut y, &[]);
        }
    }

    #[test]
    fn backend_name_and_env_contract() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Vector.name(), "vector");
        // the global backend resolves to something and stays stable
        let b = backend();
        assert_eq!(backend(), b);
    }
}
