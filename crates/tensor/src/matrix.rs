//! Dense row-major `f32` matrices.
//!
//! [`Matrix`] is the only dense value type in the workspace. It is a plain
//! `Vec<f32>` plus a shape; all shaping errors panic early with the shapes
//! involved, since silent broadcasting bugs are the classic failure mode of
//! hand-rolled training loops.

use crate::kernels;
use rand::Rng;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// An empty 0×0 matrix (no allocation) — the "parked buffer" state of
/// arena-pooled matrices.
impl Default for Matrix {
    fn default() -> Self {
        Self { rows: 0, cols: 0, data: Vec::new() }
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer of {} elements cannot be {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix element-wise from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A matrix with i.i.d. N(0, std²) entries.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Self {
        crate::init::normal(rows, cols, std, rng)
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self { rows: 1, cols, data }
    }

    /// An n×1 column vector.
    pub fn col_vector(data: Vec<f32>) -> Self {
        let rows = data.len();
        Self { rows, cols: 1, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// The single element of a 1×1 matrix.
    ///
    /// # Panics
    /// If the matrix is not 1×1.
    pub fn scalar(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar() on a {}x{} matrix", self.rows, self.cols);
        self.data[0]
    }

    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Reshapes this matrix in place to `rows × cols`, zero-filled.
    /// Existing buffer capacity is reused — the steady-state path of the
    /// autograd arena performs no heap allocation once warmed.
    pub fn reset_to(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix transpose (allocates).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Dense matrix product `self × rhs` using an ikj loop (cache friendly
    /// for row-major operands at the small-to-medium sizes this workspace
    /// uses).
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// In-place [`Matrix::matmul`]: overwrites `out` with `self × rhs`,
    /// reusing its buffer. The k-accumulation is serial per output
    /// element, so the result is bit-identical across kernel backends.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} × {}x{} shape mismatch",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reset_to(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                kernels::axpy(a, b_row, out_row);
            }
        }
    }

    /// `out += self × rhsᵀ` — the `dA = dY × Bᵀ` backward form, computed
    /// without materializing the transpose. Each output element is a row
    /// dot, so the result routes through the active reduction kernel.
    pub fn matmul_nt_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.cols, "matmul_nt_acc: inner dim mismatch");
        assert_eq!(out.shape(), (self.rows, rhs.rows), "matmul_nt_acc: out shape mismatch");
        for i in 0..self.rows {
            let g_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            for (k, o) in out_row.iter_mut().enumerate() {
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                *o += kernels::dot(g_row, b_row);
            }
        }
    }

    /// `out += selfᵀ × rhs` — the `dB = Aᵀ × dY` backward form, computed
    /// without materializing the transpose. Accumulation over the shared
    /// dimension is serial (axpy per row), bit-identical across backends.
    pub fn matmul_tn_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, rhs.rows, "matmul_tn_acc: inner dim mismatch");
        assert_eq!(out.shape(), (self.cols, rhs.cols), "matmul_tn_acc: out shape mismatch");
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let g_row = &rhs.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[k * rhs.cols..(k + 1) * rhs.cols];
                kernels::axpy(a, g_row, out_row);
            }
        }
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        kernels::add_assign(&mut self.data, &other.data);
    }

    /// `self += alpha * other` (axpy).
    pub fn scaled_add_assign(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "scaled_add_assign shape mismatch");
        kernels::axpy(alpha, &other.data, &mut self.data);
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Element-wise combine with `other` into a new matrix.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Sum over all elements (routes through the active reduction kernel).
    pub fn sum(&self) -> f32 {
        kernels::sum(&self.data)
    }

    /// Column sums as a 1×cols row vector.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Squared Frobenius norm (routes through the active reduction kernel).
    pub fn frob_sq(&self) -> f32 {
        kernels::frob_sq(&self.data)
    }

    /// Inserts `vals` as a new row at index `at`, shifting later rows
    /// down. Backbone of lazily growing scoped embedding tables (the
    /// optimizer shifts its per-row state identically, see
    /// `Adam::insert_zero_row`).
    pub fn insert_row(&mut self, at: usize, vals: &[f32]) {
        assert!(at <= self.rows, "insert_row at {at} out of bounds ({} rows)", self.rows);
        assert_eq!(
            vals.len(),
            self.cols,
            "insert_row: row of {} vs {} cols",
            vals.len(),
            self.cols
        );
        let idx = at * self.cols;
        self.data.splice(idx..idx, vals.iter().copied());
        self.rows += 1;
    }

    /// Removes the row at index `at`, shifting later rows up — the exact
    /// inverse of [`Matrix::insert_row`]. Backbone of cold-row eviction in
    /// scoped embedding tables (the optimizer drops its per-row state
    /// identically, see `Adam::remove_row`).
    pub fn remove_row(&mut self, at: usize) {
        assert!(at < self.rows, "remove_row at {at} out of bounds ({} rows)", self.rows);
        let idx = at * self.cols;
        self.data.drain(idx..idx + self.cols);
        self.rows -= 1;
    }

    /// Gathers rows `idx` into a new `idx.len()×cols` matrix.
    pub fn gather_rows(&self, idx: &[u32]) -> Matrix {
        let mut out = Matrix::default();
        self.gather_rows_into(idx, &mut out);
        out
    }

    /// In-place [`Matrix::gather_rows`], reusing `out`'s buffer.
    pub fn gather_rows_into(&self, idx: &[u32], out: &mut Matrix) {
        out.reset_to(idx.len(), self.cols);
        for (o, &i) in idx.iter().enumerate() {
            let i = i as usize;
            assert!(i < self.rows, "gather_rows: row {i} out of bounds ({} rows)", self.rows);
            out.row_mut(o).copy_from_slice(self.row(i));
        }
    }

    /// Scatter-adds the rows of `src` into rows `idx` of `self`
    /// (duplicate indices accumulate).
    pub fn scatter_add_rows(&mut self, idx: &[u32], src: &Matrix) {
        assert_eq!(idx.len(), src.rows(), "scatter_add_rows: index/src mismatch");
        assert_eq!(self.cols, src.cols(), "scatter_add_rows: col mismatch");
        for (r, &i) in idx.iter().enumerate() {
            let dst = self.row_mut(i as usize);
            for (d, &s) in dst.iter_mut().zip(src.row(r)) {
                *d += s;
            }
        }
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference with `other`, for tests.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "cannot be 2x2")]
    fn from_vec_rejects_bad_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1., 2., 3.]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());
        assert_eq!(i.matmul(&a).as_slice(), a.as_slice());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose().as_slice(), a.as_slice());
    }

    #[test]
    fn gather_and_scatter_are_adjoint() {
        let m = Matrix::from_vec(4, 2, vec![0., 1., 10., 11., 20., 21., 30., 31.]);
        let g = m.gather_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[20., 21., 0., 1., 20., 21.]);

        // scatter with duplicates accumulates
        let mut acc = Matrix::zeros(4, 2);
        acc.scatter_add_rows(&[2, 0, 2], &Matrix::from_vec(3, 2, vec![1.; 6]));
        assert_eq!(acc.as_slice(), &[1., 1., 0., 0., 2., 2., 0., 0.]);
    }

    #[test]
    fn col_sums_sums_columns() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.col_sums().as_slice(), &[5., 7., 9.]);
    }

    #[test]
    fn axpy_and_frobenius() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.scaled_add_assign(0.5, &b);
        assert_eq!(a.as_slice(), &[2., 2., 2., 2.]);
        assert_eq!(a.frob_sq(), 16.0);
    }

    #[test]
    fn scalar_extraction() {
        assert_eq!(Matrix::full(1, 1, 3.5).scalar(), 3.5);
    }

    #[test]
    fn reset_to_reuses_capacity_and_zeroes() {
        let mut m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        m.reset_to(3, 2);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.as_slice(), &[0.0; 6]);
        // shrink then grow back within the original capacity
        m.reset_to(1, 2);
        assert_eq!(m.len(), 2);
        m.reset_to(2, 3);
        assert_eq!(m.as_slice(), &[0.0; 6]);
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let mut out = Matrix::full(5, 5, 9.9); // wrong shape + dirty buffer
        a.matmul_into(&b, &mut out);
        assert_eq!(out.as_slice(), a.matmul(&b).as_slice());
    }

    #[test]
    fn transposed_accumulate_forms_match_explicit_transpose() {
        let g = Matrix::from_vec(2, 3, vec![1., -2., 3., 0.5, 0., -1.]);
        let b = Matrix::from_vec(4, 3, vec![2., 1., 0., -1., 3., 2., 0., 0., 1., 1., -1., 4.]);
        let mut nt = Matrix::zeros(2, 4);
        g.matmul_nt_acc(&b, &mut nt);
        let expect_nt = g.matmul(&b.transpose());
        assert!(nt.max_abs_diff(&expect_nt) < 1e-6);
        // accumulation adds on top of existing contents
        g.matmul_nt_acc(&b, &mut nt);
        let mut doubled = expect_nt.clone();
        doubled.add_assign(&expect_nt);
        assert!(nt.max_abs_diff(&doubled) < 1e-6);

        let a = Matrix::from_vec(2, 4, vec![1., 2., 0., -1., 3., 0., 2., 1.]);
        let mut tn = Matrix::zeros(4, 3);
        a.matmul_tn_acc(&g, &mut tn);
        let expect_tn = a.transpose().matmul(&g);
        assert!(tn.max_abs_diff(&expect_tn) < 1e-6);
    }
}

/// Wire form for (de)serialization; shape consistency is re-validated on
/// load so corrupted checkpoints fail loudly instead of mis-shaping math.
#[derive(serde::Serialize, serde::Deserialize)]
struct MatrixWire {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl serde::Serialize for Matrix {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        MatrixWire { rows: self.rows, cols: self.cols, data: self.data.clone() }
            .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for Matrix {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let wire = MatrixWire::deserialize(deserializer)?;
        if wire.data.len() != wire.rows * wire.cols {
            return Err(serde::de::Error::custom(format!(
                "matrix buffer of {} elements cannot be {}x{}",
                wire.data.len(),
                wire.rows,
                wire.cols
            )));
        }
        Ok(Matrix { rows: wire.rows, cols: wire.cols, data: wire.data })
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn corrupted_shape_is_rejected() {
        let json = r#"{"rows":2,"cols":2,"data":[1.0,2.0,3.0]}"#;
        let err = serde_json::from_str::<Matrix>(json).unwrap_err();
        assert!(err.to_string().contains("cannot be 2x2"), "{err}");
    }
}
