//! Heap-allocation accounting: a counting `GlobalAlloc` wrapper plus the
//! query API the perf harness is built on.
//!
//! Binaries that want accounting opt in by installing the shim:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ptf_tensor::alloc::CountingAlloc = ptf_tensor::alloc::CountingAlloc;
//! ```
//!
//! Every query below reads plain atomics/thread-locals, so library code can
//! call them unconditionally: without the shim installed they simply report
//! zero. Two consumers rely on this:
//!
//! * `bench_paper_scale` uses [`peak_bytes`] as an allocator-precise
//!   "peak RSS" figure (live heap high-water mark — tighter than OS RSS,
//!   which includes the binary and allocator slack);
//! * the federated protocols measure [`thread_allocs`] around each
//!   client's local round to *prove* the scratch-buffer hot path performs
//!   zero steady-state heap allocations (the counter is thread-local, so
//!   parallel workers never see each other's traffic).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn on_alloc(size: usize) {
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let now = CURRENT_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
    // `try_with`: the TLS slot may already be torn down during thread exit
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

#[inline]
fn on_dealloc(size: usize) {
    CURRENT_BYTES.fetch_sub(size, Ordering::Relaxed);
}

/// A [`System`]-backed allocator that keeps global and per-thread
/// counters. Install with `#[global_allocator]` to enable accounting.
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the bookkeeping around it
// touches only atomics and a const-initialized thread-local.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards `layout` unchanged to `System.alloc`, which upholds
    // the `GlobalAlloc` contract; the counter update never allocates.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` come from a matching `alloc` on this same
    // `System` delegate, so forwarding them to `System.dealloc` is sound.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }

    // SAFETY: same argument as `alloc`; `System.alloc_zeroed` upholds the
    // zero-initialization contract itself.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    // SAFETY: `ptr`/`layout` come from a matching `alloc`, and `new_size`
    // is forwarded unchanged, so `System.realloc`'s contract is met.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // a grow/shrink counts as one allocation event and adjusts the
        // live-byte figure by the delta
        on_dealloc(layout.size());
        on_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocation events since process start (or [`reset_counters`]).
pub fn total_allocs() -> u64 {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

/// Bytes requested across all allocation events.
pub fn total_bytes() -> u64 {
    TOTAL_BYTES.load(Ordering::Relaxed)
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    CURRENT_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since start (or [`reset_peak`]).
pub fn peak_bytes() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Allocation events on *this thread* since it started. Monotonic;
/// callers measure a region by differencing two reads.
pub fn thread_allocs() -> u64 {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

/// Rebases the peak to the current live size (measure a phase's peak).
pub fn reset_peak() {
    PEAK_BYTES.store(CURRENT_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Zeroes the cumulative counters (not the live/current figure).
pub fn reset_counters() {
    TOTAL_ALLOCS.store(0, Ordering::Relaxed);
    TOTAL_BYTES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    // NB: the shim is *not* installed in this test binary, so the
    // counters must read zero — which is itself the contract library
    // callers depend on.
    #[test]
    fn uninstalled_counters_read_zero() {
        let _v: Vec<u64> = (0..1000).collect();
        assert_eq!(super::total_allocs(), 0);
        assert_eq!(super::peak_bytes(), 0);
        assert_eq!(super::thread_allocs(), 0);
    }
}
