//! Trainable parameter storage.
//!
//! A model owns a [`Params`] store; each training batch builds a
//! [`crate::Graph`] borrowing the store immutably, and the optimizer then
//! applies the returned [`crate::Grads`] mutably. Identifiers are plain
//! indices so models can keep them in their structs.

use crate::matrix::Matrix;

/// Handle to one parameter matrix inside a [`Params`] store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

/// An ordered collection of named parameter matrices.
#[derive(Clone, Debug, Default)]
pub struct Params {
    mats: Vec<Matrix>,
    names: Vec<String>,
}

impl Params {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn push(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.mats.push(value);
        self.names.push(name.into());
        ParamId(self.mats.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.mats.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.mats[id.0]
    }

    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.mats[id.0]
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.mats.iter().zip(&self.names).enumerate().map(|(i, (m, n))| (ParamId(i), n.as_str(), m))
    }

    /// Total number of scalar parameters, i.e. the "model size" used in
    /// communication-cost discussions.
    pub fn num_scalars(&self) -> usize {
        self.mats.iter().map(Matrix::len).sum()
    }

    /// True if every parameter is finite (cheap divergence check in tests).
    pub fn all_finite(&self) -> bool {
        self.mats.iter().all(Matrix::all_finite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut p = Params::new();
        let a = p.push("emb", Matrix::zeros(3, 2));
        let b = p.push("w", Matrix::full(2, 2, 1.0));
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(a).shape(), (3, 2));
        assert_eq!(p.name(b), "w");
        assert_eq!(p.num_scalars(), 10);
        p.get_mut(a).set(0, 0, 5.0);
        assert_eq!(p.get(a).get(0, 0), 5.0);
    }

    #[test]
    fn iter_preserves_order() {
        let mut p = Params::new();
        p.push("a", Matrix::zeros(1, 1));
        p.push("b", Matrix::zeros(1, 2));
        let names: Vec<_> = p.iter().map(|(_, n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}

/// Wire form of a parameter store. Names travel with the values so a
/// checkpoint loaded into a differently-shaped model fails loudly.
#[derive(serde::Serialize, serde::Deserialize)]
struct ParamsWire {
    names: Vec<String>,
    mats: Vec<Matrix>,
}

impl serde::Serialize for Params {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ParamsWire { names: self.names.clone(), mats: self.mats.clone() }.serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for Params {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let wire = ParamsWire::deserialize(deserializer)?;
        if wire.names.len() != wire.mats.len() {
            return Err(serde::de::Error::custom("names/values length mismatch"));
        }
        Ok(Params { mats: wire.mats, names: wire.names })
    }
}

impl Params {
    /// Copies values from a checkpointed store into this one. Every
    /// parameter must match by name, order and shape — this is a *state*
    /// restore, not a migration tool.
    pub fn load_state_from(&mut self, other: &Params) -> Result<(), String> {
        if self.len() != other.len() {
            return Err(format!("parameter count mismatch: {} vs {}", self.len(), other.len()));
        }
        for ((_, name_a, mat_a), (_, name_b, mat_b)) in self.iter().zip(other.iter()) {
            if name_a != name_b {
                return Err(format!("parameter name mismatch: {name_a:?} vs {name_b:?}"));
            }
            if mat_a.shape() != mat_b.shape() {
                return Err(format!(
                    "shape mismatch for {name_a:?}: {:?} vs {:?}",
                    mat_a.shape(),
                    mat_b.shape()
                ));
            }
        }
        for i in 0..other.len() {
            let id = ParamId(i);
            let src = other.get(id).clone();
            *self.get_mut(id) = src;
        }
        Ok(())
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    fn store() -> Params {
        let mut p = Params::new();
        p.push("emb", Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        p.push("w", Matrix::from_vec(1, 2, vec![5., 6.]));
        p
    }

    #[test]
    fn json_roundtrip_preserves_names_and_values() {
        let p = store();
        let json = serde_json::to_string(&p).unwrap();
        let back: Params = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.name(ParamId(0)), "emb");
        assert_eq!(back.get(ParamId(1)).as_slice(), &[5., 6.]);
    }

    #[test]
    fn load_state_restores_checkpoint() {
        let checkpoint = store();
        let mut live = store();
        live.get_mut(ParamId(0)).fill(0.0); // "training" drifted
        live.load_state_from(&checkpoint).unwrap();
        assert_eq!(live.get(ParamId(0)).as_slice(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn load_state_rejects_mismatches() {
        let mut live = store();
        let mut renamed = Params::new();
        renamed.push("other", Matrix::zeros(2, 2));
        renamed.push("w", Matrix::zeros(1, 2));
        assert!(live.load_state_from(&renamed).unwrap_err().contains("name mismatch"));

        let mut reshaped = Params::new();
        reshaped.push("emb", Matrix::zeros(3, 2));
        reshaped.push("w", Matrix::zeros(1, 2));
        assert!(live.load_state_from(&reshaped).unwrap_err().contains("shape mismatch"));

        let mut short = Params::new();
        short.push("emb", Matrix::zeros(2, 2));
        assert!(live.load_state_from(&short).unwrap_err().contains("count mismatch"));
    }
}
