//! # ptf-tensor
//!
//! A small, dependency-light numeric substrate for the PTF-FedRec
//! reproduction: dense row-major [`Matrix`] values, CSR [`sparse::Csr`]
//! matrices for graph propagation, an arena-backed reverse-mode autograd
//! tape ([`graph::Graph`] over a reusable [`graph::GraphArena`]), the
//! env-selectable [`kernels`] (chunked 8-lane vector backend vs the
//! scalar reference, `PTF_KERNEL`), the [`optim`] optimizers (Adam with
//! lazy row-sparse embedding updates, plain SGD), the [`par`] fork/join
//! primitives (plus the [`par::Pool`] worker-scratch pool) behind
//! deterministic parallel client execution, and the [`alloc`]
//! counting-allocator shim behind heap accounting in the perf harness.
//!
//! The design is deliberately "define-by-run": every training batch builds a
//! fresh [`graph::Graph`] over a shared [`params::Params`] store, computes a
//! scalar loss, and calls [`graph::Graph::backward`] to obtain per-parameter
//! gradients. Embedding lookups produce *row-sparse* gradients so that a
//! client holding a 10k-item embedding table only pays for the rows its
//! batch touched.
//!
//! ```
//! use ptf_tensor::prelude::*;
//!
//! let mut rng = ptf_tensor::test_rng(7);
//! let mut params = Params::new();
//! let w = params.push("w", Matrix::randn(3, 1, 0.1, &mut rng));
//!
//! // one gradient step of least squares via the autograd graph
//! let x = Matrix::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
//! let mut adam = Adam::with_defaults(&params, 0.05);
//! let mut g = Graph::new(&params);
//! let xv = g.leaf(x);
//! let wv = g.param(w);
//! let pred = g.matmul(xv, wv);
//! let loss = g.bce_with_logits(pred, &[1.0, 0.0]);
//! let grads = g.backward(loss);
//! drop(g);
//! adam.step(&mut params, &grads);
//! ```

pub mod alloc;
pub mod grad;
pub mod graph;
pub mod init;
pub mod kernels;
pub mod matrix;
pub mod optim;
pub mod par;
pub mod params;
pub mod rowtable;
pub mod sparse;

pub use grad::{GradBuf, Grads, RowSparse};
pub use graph::{Graph, GraphArena, Var};
pub use matrix::Matrix;
pub use optim::{Adam, Sgd};
pub use params::{ParamId, Params};
pub use rowtable::{derive_seed, ItemScope, RowTable, ScopeIndex};
pub use sparse::{Csr, PropagationMatrix};

/// Convenience prelude that re-exports the types almost every user needs.
pub mod prelude {
    pub use crate::grad::{GradBuf, Grads};
    pub use crate::graph::{Graph, GraphArena, Var};
    pub use crate::matrix::Matrix;
    pub use crate::optim::{Adam, Sgd};
    pub use crate::params::{ParamId, Params};
    pub use crate::sparse::{Csr, PropagationMatrix};
}

/// A deterministic RNG for examples and tests.
pub fn test_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
