//! A minimal deterministic fork/join worker pool on `std::thread::scope`.
//!
//! The crate has no crates.io access, so this is the whole parallel
//! substrate: ordered map primitives that split the input into contiguous
//! chunks, run each chunk on its own scoped thread, and splice the
//! results back **in input order**. Nothing here is work-stealing or
//! lock-free — per-item work in this workspace (a client's local training
//! round, a user's full ranking pass) is orders of magnitude heavier than
//! a thread spawn, and static chunking keeps the schedule — and therefore
//! the output — independent of timing.
//!
//! Determinism contract: for a pure-per-item `f`, every function in this
//! module returns **bit-identical output at any thread count, including
//! 1** (the single-thread path is a plain loop, not a pool of one).
//! Callers that need randomness derive an independent RNG per item (see
//! `ptf_federated::scheduler`) instead of threading one generator through
//! the loop.

/// Number of hardware threads, with a floor of 1 when the platform cannot
/// report it.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a user-facing thread knob: `0` means "use every hardware
/// thread", any other value is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Splits `n` items into at most `parts` contiguous chunk lengths whose
/// sizes differ by at most one (earlier chunks take the remainder).
fn chunk_lens(n: usize, parts: usize) -> Vec<usize> {
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

/// Applies `f(index, &mut item)` to every element of `items` across up to
/// `threads` scoped threads and returns the results in input order.
///
/// `threads` is resolved with [`resolve_threads`]; `threads == 1` (or a
/// single item) runs inline on the caller's thread with no spawn at all.
pub fn map_slice_mut<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || items.len() <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let lens = chunk_lens(items.len(), threads);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(lens.len());
        let mut rest = items;
        let mut offset = 0usize;
        for len in lens {
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            let start = offset;
            offset += len;
            handles.push(scope.spawn(move || {
                chunk.iter_mut().enumerate().map(|(i, t)| f(start + i, t)).collect::<Vec<R>>()
            }));
        }
        let mut out = Vec::with_capacity(offset);
        for h in handles {
            out.extend(h.join().expect("worker thread panicked"));
        }
        out
    })
}

/// Applies `f(index)` for `index in 0..n` across up to `threads` scoped
/// threads and returns the results in index order.
pub fn map_indices<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let lens = chunk_lens(n, threads);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(lens.len());
        let mut start = 0usize;
        for len in lens {
            let range = start..start + len;
            start += len;
            handles.push(scope.spawn(move || range.map(f).collect::<Vec<R>>()));
        }
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("worker thread panicked"));
        }
        out
    })
}

/// A checkout/restore pool of reusable worker-scratch values.
///
/// The deterministic map primitives above run closures on scoped worker
/// threads; hot-path callers give each closure invocation a scratch value
/// from a shared `Pool` so steady-state iterations reuse warmed buffers
/// instead of allocating. A `Pool` never affects results — scratch
/// contents are cleared by the consumer before use — it only affects
/// *where the bytes live*. The pool is a `Mutex<Vec<T>>` (two
/// uncontended lock ops per checkout, no allocation once the slot vector
/// has grown to the worker count), which is noise next to the per-item
/// work these maps are designed for.
///
/// [`Pool::fresh`] builds a pass-through pool (checkout always constructs
/// a default value, restore drops it) — the debug mode used to prove that
/// buffer reuse is observationally pure.
pub struct Pool<T> {
    slots: std::sync::Mutex<Vec<T>>,
    reuse: bool,
}

impl<T: Default> Pool<T> {
    /// A reusing pool (the production mode).
    pub fn new() -> Self {
        Self::with_reuse(true)
    }

    /// A pass-through pool: every checkout is a fresh `T::default()`.
    pub fn fresh() -> Self {
        Self::with_reuse(false)
    }

    /// `reuse = false` gives the [`Pool::fresh`] behaviour.
    pub fn with_reuse(reuse: bool) -> Self {
        // capacity for more workers than any host exposes, so the slot
        // vector itself never reallocates on the hot path
        Self { slots: std::sync::Mutex::new(Vec::with_capacity(128)), reuse }
    }

    /// True if restored values are recycled (production mode).
    pub fn reuses(&self) -> bool {
        self.reuse
    }

    /// Takes a scratch value: a warmed one when available, else fresh.
    pub fn checkout(&self) -> T {
        if self.reuse {
            if let Some(v) = self.slots.lock().expect("pool lock").pop() {
                return v;
            }
        }
        T::default()
    }

    /// Returns a scratch value for reuse (dropped in fresh mode).
    pub fn restore(&self, value: T) {
        if self.reuse {
            let mut slots = self.slots.lock().expect("pool lock");
            if slots.len() < slots.capacity() {
                slots.push(value);
            }
        }
    }
}

impl<T: Default> Default for Pool<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_and_balance() {
        assert_eq!(chunk_lens(10, 3), vec![4, 3, 3]);
        assert_eq!(chunk_lens(2, 8), vec![1, 1]);
        assert_eq!(chunk_lens(0, 4), vec![0]);
        for (n, p) in [(1, 1), (7, 2), (100, 16), (5, 5)] {
            let lens = chunk_lens(n, p);
            assert_eq!(lens.iter().sum::<usize>(), n);
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced: {lens:?}");
        }
    }

    #[test]
    fn map_indices_is_ordered_and_thread_invariant() {
        let square = |i: usize| (i * i) as u64;
        let serial = map_indices(1, 37, square);
        for threads in [2, 3, 8, 64] {
            assert_eq!(map_indices(threads, 37, square), serial, "{threads} threads");
        }
        assert_eq!(serial[5], 25);
    }

    #[test]
    fn map_slice_mut_mutates_every_item_once() {
        let run = |threads: usize| {
            let mut xs: Vec<u32> = (0..23).collect();
            let doubled = map_slice_mut(threads, &mut xs, |i, x| {
                *x *= 2;
                (i as u32, *x)
            });
            (xs, doubled)
        };
        let serial = run(1);
        for threads in [2, 4, 16] {
            assert_eq!(run(threads), serial, "{threads} threads");
        }
        assert_eq!(serial.0[3], 6);
        assert_eq!(serial.1[3], (3, 6));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(map_indices(4, 0, |i| i).is_empty());
        let mut one = [7u8];
        assert_eq!(map_slice_mut(4, &mut one, |_, x| *x), vec![7]);
    }

    #[test]
    fn resolve_zero_means_all_cores() {
        assert_eq!(resolve_threads(0), available_threads());
        assert_eq!(resolve_threads(3), 3);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn pool_recycles_restored_values() {
        let pool: Pool<Vec<u32>> = Pool::new();
        let mut v = pool.checkout();
        v.reserve(1024);
        let cap = v.capacity();
        pool.restore(v);
        assert!(pool.checkout().capacity() >= cap, "warmed buffer was not recycled");
    }

    #[test]
    fn fresh_pool_never_recycles() {
        let pool: Pool<Vec<u32>> = Pool::fresh();
        let mut v = pool.checkout();
        v.reserve(1024);
        pool.restore(v);
        assert_eq!(pool.checkout().capacity(), 0);
        assert!(!pool.reuses());
    }

    #[test]
    fn pool_is_safe_across_worker_threads() {
        let pool: Pool<Vec<u64>> = Pool::new();
        let out = map_indices(4, 64, |i| {
            let mut s = pool.checkout();
            s.clear();
            s.extend(0..i as u64);
            let sum: u64 = s.iter().sum();
            pool.restore(s);
            sum
        });
        let expected: Vec<u64> = (0..64).map(|i| (0..i as u64).sum()).collect();
        assert_eq!(out, expected);
    }
}
