//! Gradient buffers.
//!
//! Embedding tables receive gradients only on the rows a batch touched, so
//! [`GradBuf`] has a row-sparse representation next to the dense one. A
//! buffer silently *promotes* to dense if a dense contribution arrives
//! (e.g. the same table also flowed through a matmul).

use crate::matrix::Matrix;
use crate::params::{ParamId, Params};
use std::collections::HashMap;

/// Row-sparse gradient: a set of `(row index, row values)` pairs.
#[derive(Clone, Debug, Default)]
pub struct RowSparse {
    cols: usize,
    /// row index → slot in `rows`/`data`
    slot_of_row: HashMap<u32, usize>,
    rows: Vec<u32>,
    /// `rows.len() * cols` values, row-major.
    data: Vec<f32>,
}

impl RowSparse {
    pub fn new(cols: usize) -> Self {
        Self { cols, ..Default::default() }
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of distinct rows carrying gradient.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Adds `values` (length `cols`) into the accumulated gradient of `row`.
    pub fn add_row(&mut self, row: u32, values: &[f32]) {
        debug_assert_eq!(values.len(), self.cols);
        let slot = *self.slot_of_row.entry(row).or_insert_with(|| {
            self.rows.push(row);
            self.data.resize(self.data.len() + self.cols, 0.0);
            self.rows.len() - 1
        });
        let dst = &mut self.data[slot * self.cols..(slot + 1) * self.cols];
        for (d, &v) in dst.iter_mut().zip(values) {
            *d += v;
        }
    }

    /// Drops all accumulated rows, keeping the allocation (and `cols`)
    /// for reuse — the recycling path of the autograd arena.
    pub fn clear(&mut self) {
        self.slot_of_row.clear();
        self.rows.clear();
        self.data.clear();
    }

    /// Iterates `(row, values)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[f32])> {
        self.rows
            .iter()
            .enumerate()
            .map(move |(slot, &r)| (r, &self.data[slot * self.cols..(slot + 1) * self.cols]))
    }

    /// Adds this sparse gradient into a dense matrix.
    pub fn add_into_dense(&self, dense: &mut Matrix) {
        assert_eq!(dense.cols(), self.cols, "RowSparse/dense col mismatch");
        for (r, vals) in self.iter() {
            let dst = dense.row_mut(r as usize);
            for (d, &v) in dst.iter_mut().zip(vals) {
                *d += v;
            }
        }
    }

    /// Materializes as a dense `rows×cols` matrix.
    pub fn to_dense(&self, rows: usize) -> Matrix {
        let mut m = Matrix::zeros(rows, self.cols);
        self.add_into_dense(&mut m);
        m
    }
}

/// A gradient for one parameter: dense or row-sparse.
#[derive(Clone, Debug)]
pub enum GradBuf {
    Dense(Matrix),
    Rows(RowSparse),
}

impl GradBuf {
    /// Adds a dense contribution, promoting a sparse buffer if needed.
    pub fn add_dense(&mut self, g: &Matrix) {
        match self {
            GradBuf::Dense(d) => d.add_assign(g),
            GradBuf::Rows(rs) => {
                let mut dense = g.clone();
                rs.add_into_dense(&mut dense);
                *self = GradBuf::Dense(dense);
            }
        }
    }

    /// Adds rows `idx` of gradient `g` (shape `idx.len()×cols`).
    pub fn add_rows(&mut self, idx: &[u32], g: &Matrix) {
        match self {
            GradBuf::Dense(d) => d.scatter_add_rows(idx, g),
            GradBuf::Rows(rs) => {
                for (k, &r) in idx.iter().enumerate() {
                    rs.add_row(r, g.row(k));
                }
            }
        }
    }

    /// Materializes as a dense matrix with the given full shape.
    pub fn to_dense(&self, rows: usize, cols: usize) -> Matrix {
        match self {
            GradBuf::Dense(d) => {
                assert_eq!(d.shape(), (rows, cols), "GradBuf::to_dense shape mismatch");
                d.clone()
            }
            GradBuf::Rows(rs) => {
                assert_eq!(rs.cols(), cols, "GradBuf::to_dense col mismatch");
                rs.to_dense(rows)
            }
        }
    }
}

/// Gradients for every parameter of a [`Params`] store, aligned by index.
#[derive(Clone, Debug)]
pub struct Grads {
    pub(crate) bufs: Vec<Option<GradBuf>>,
}

impl Grads {
    pub fn new_for(params: &Params) -> Self {
        Self { bufs: (0..params.len()).map(|_| None).collect() }
    }

    /// Empties every slot and re-sizes to `params`, keeping the `Vec`
    /// allocation — used when a recycled `Grads` shell is reused.
    pub(crate) fn reset_for(&mut self, params: &Params) {
        self.bufs.clear();
        self.bufs.resize_with(params.len(), || None);
    }

    /// Mutable access to the gradient slot of `id` (used by the graph's
    /// backward pass and by tests/optimizers that synthesize gradients).
    pub fn slot_mut(&mut self, id: ParamId) -> &mut Option<GradBuf> {
        &mut self.bufs[id.index()]
    }

    /// The gradient of `id`, if the loss depended on it.
    pub fn get(&self, id: ParamId) -> Option<&GradBuf> {
        self.bufs[id.index()].as_ref()
    }

    /// Dense view of the gradient of `id` (zeros if absent).
    pub fn dense(&self, id: ParamId, params: &Params) -> Matrix {
        let (r, c) = params.get(id).shape();
        match self.get(id) {
            Some(buf) => buf.to_dense(r, c),
            None => Matrix::zeros(r, c),
        }
    }

    /// Iterates `(id, buf)` over parameters that received gradient.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &GradBuf)> {
        self.bufs.iter().enumerate().filter_map(|(i, b)| b.as_ref().map(|b| (ParamId(i), b)))
    }

    /// Number of parameters that received any gradient.
    pub fn num_touched(&self) -> usize {
        self.bufs.iter().filter(|b| b.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_sparse_accumulates_duplicates() {
        let mut rs = RowSparse::new(2);
        rs.add_row(3, &[1.0, 2.0]);
        rs.add_row(1, &[5.0, 5.0]);
        rs.add_row(3, &[1.0, -1.0]);
        assert_eq!(rs.num_rows(), 2);
        let d = rs.to_dense(4);
        assert_eq!(d.row(3), &[2.0, 1.0]);
        assert_eq!(d.row(1), &[5.0, 5.0]);
        assert_eq!(d.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn row_sparse_clear_keeps_cols_and_forgets_rows() {
        let mut rs = RowSparse::new(3);
        rs.add_row(1, &[1.0, 2.0, 3.0]);
        rs.clear();
        assert_eq!(rs.num_rows(), 0);
        assert_eq!(rs.cols(), 3);
        rs.add_row(2, &[4.0, 5.0, 6.0]);
        let d = rs.to_dense(3);
        assert_eq!(d.row(2), &[4.0, 5.0, 6.0]);
        assert_eq!(d.row(1), &[0.0; 3]);
    }

    #[test]
    fn gradbuf_promotes_to_dense() {
        let mut buf = GradBuf::Rows(RowSparse::new(2));
        buf.add_rows(&[0, 2], &Matrix::from_vec(2, 2, vec![1., 1., 2., 2.]));
        buf.add_dense(&Matrix::full(3, 2, 10.0));
        match &buf {
            GradBuf::Dense(d) => {
                assert_eq!(d.row(0), &[11.0, 11.0]);
                assert_eq!(d.row(1), &[10.0, 10.0]);
                assert_eq!(d.row(2), &[12.0, 12.0]);
            }
            GradBuf::Rows(_) => panic!("expected promotion to dense"),
        }
    }

    #[test]
    fn dense_buf_accepts_row_updates() {
        let mut buf = GradBuf::Dense(Matrix::zeros(3, 2));
        buf.add_rows(&[1, 1], &Matrix::full(2, 2, 1.0));
        assert_eq!(buf.to_dense(3, 2).row(1), &[2.0, 2.0]);
    }

    #[test]
    fn grads_alignment() {
        let mut p = Params::new();
        let a = p.push("a", Matrix::zeros(2, 2));
        let b = p.push("b", Matrix::zeros(1, 2));
        let mut g = Grads::new_for(&p);
        *g.slot_mut(b) = Some(GradBuf::Dense(Matrix::full(1, 2, 3.0)));
        assert!(g.get(a).is_none());
        assert_eq!(g.dense(b, &p).as_slice(), &[3.0, 3.0]);
        assert_eq!(g.dense(a, &p).as_slice(), &[0.0; 4]);
        assert_eq!(g.num_touched(), 1);
    }
}
