//! Optimizers: Adam (with lazy row-sparse embedding updates) and SGD.

use crate::grad::{GradBuf, Grads};
use crate::kernels;
use crate::matrix::Matrix;
use crate::params::Params;

/// Plain stochastic gradient descent: `p ← p − lr·g`.
#[derive(Clone, Debug)]
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    pub fn step(&mut self, params: &mut Params, grads: &Grads) {
        for (id, buf) in grads.iter() {
            match buf {
                GradBuf::Dense(g) => params.get_mut(id).scaled_add_assign(-self.lr, g),
                GradBuf::Rows(rs) => {
                    let table = params.get_mut(id);
                    for (r, vals) in rs.iter() {
                        kernels::axpy(-self.lr, vals, table.row_mut(r as usize));
                    }
                }
            }
        }
    }
}

/// Adam configuration (PyTorch defaults unless stated otherwise).
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
}

impl AdamConfig {
    pub fn with_lr(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

/// Adam optimizer.
///
/// Dense gradients get the textbook update. Row-sparse gradients (from
/// embedding gathers) get a *lazy* update: first/second-moment state and
/// the parameter move only for rows that actually received gradient this
/// step, with bias correction driven by the global step counter. This is
/// the same semantics as TensorFlow's `LazyAdam` and keeps per-batch cost
/// proportional to the batch, not the vocabulary.
#[derive(Clone, Debug)]
pub struct Adam {
    cfg: AdamConfig,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    pub fn new(params: &Params, cfg: AdamConfig) -> Self {
        let m = params.iter().map(|(_, _, p)| Matrix::zeros_like(p)).collect();
        let v = params.iter().map(|(_, _, p)| Matrix::zeros_like(p)).collect();
        Self { cfg, t: 0, m, v }
    }

    pub fn with_defaults(params: &Params, lr: f32) -> Self {
        Self::new(params, AdamConfig::with_lr(lr))
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Re-shapes the moment buffers to `params` (all zeros) and resets
    /// the step counter — used after a state restore changes parameter
    /// shapes (scoped checkpoints may carry a different number of
    /// materialized item rows).
    pub fn reset_state(&mut self, params: &Params) {
        self.m = params.iter().map(|(_, _, p)| Matrix::zeros_like(p)).collect();
        self.v = params.iter().map(|(_, _, p)| Matrix::zeros_like(p)).collect();
        self.t = 0;
    }

    /// Snapshots the optimizer state — step counter and both moment
    /// buffers — for a *full* checkpoint ([`Adam::restore_state`] is the
    /// inverse). Unlike [`Adam::reset_state`]-based restores, a
    /// round-tripped optimizer continues training bit-identically.
    pub fn export_state(&self) -> (u64, Vec<Matrix>, Vec<Matrix>) {
        (self.t, self.m.clone(), self.v.clone())
    }

    /// Restores a snapshot taken by [`Adam::export_state`]. The moment
    /// buffers must match `params` shape-for-shape — a checkpoint written
    /// against different parameter shapes is rejected.
    pub fn restore_state(
        &mut self,
        params: &Params,
        t: u64,
        m: Vec<Matrix>,
        v: Vec<Matrix>,
    ) -> Result<(), String> {
        let shapes: Vec<(usize, usize)> = params.iter().map(|(_, _, p)| p.shape()).collect();
        for (which, buf) in [("first", &m), ("second", &v)] {
            if buf.len() != shapes.len() {
                return Err(format!(
                    "optimizer {which}-moment count mismatch: {} vs {} parameters",
                    buf.len(),
                    shapes.len()
                ));
            }
            for (i, mat) in buf.iter().enumerate() {
                if mat.shape() != shapes[i] {
                    return Err(format!(
                        "optimizer {which}-moment shape mismatch at parameter {i}: {:?} vs {:?}",
                        mat.shape(),
                        shapes[i]
                    ));
                }
            }
        }
        self.t = t;
        self.m = m;
        self.v = v;
        Ok(())
    }

    /// Mirrors a `Matrix::insert_row` on parameter `id`: inserts an
    /// all-zero row into both moment matrices at `at`, so a lazily
    /// materialized embedding row starts with fresh optimizer state while
    /// every previously tracked row keeps its moments. A zero-moment row
    /// is exactly what a dense Adam would hold for a row that never
    /// received gradient, which keeps scoped and full training
    /// bit-identical.
    pub fn insert_zero_row(&mut self, id: crate::params::ParamId, at: usize) {
        let i = id.index();
        let cols = self.m[i].cols();
        let zeros = vec![0.0f32; cols];
        self.m[i].insert_row(at, &zeros);
        self.v[i].insert_row(at, &zeros);
    }

    /// Mirrors a `Matrix::remove_row` on parameter `id`: drops row `at`
    /// from both moment matrices, the exact inverse of
    /// [`Adam::insert_zero_row`]. Eviction must go through this (not a
    /// bare parameter-row removal), otherwise the moment rows of every
    /// later row drift one position out of register and a re-materialized
    /// row would resurrect a *different* row's stale moments.
    pub fn remove_row(&mut self, id: crate::params::ParamId, at: usize) {
        let i = id.index();
        self.m[i].remove_row(at);
        self.v[i].remove_row(at);
    }

    /// Zeros the moment rows at `at` of parameter `id` — the dense-table
    /// counterpart of evicting a row: the parameter row goes back to its
    /// derived init and its optimizer state back to what a never-touched
    /// row holds, so dense and row-sparse eviction stay bit-identical.
    pub fn zero_moment_row(&mut self, id: crate::params::ParamId, at: usize) {
        let i = id.index();
        self.m[i].row_mut(at).fill(0.0);
        self.v[i].row_mut(at).fill(0.0);
    }

    pub fn step(&mut self, params: &mut Params, grads: &Grads) {
        self.t += 1;
        let b1 = self.cfg.beta1;
        let b2 = self.cfg.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.cfg.lr;
        let eps = self.cfg.eps;

        for (id, buf) in grads.iter() {
            let i = id.index();
            match buf {
                GradBuf::Dense(g) => {
                    let m = self.m[i].as_mut_slice();
                    let v = self.v[i].as_mut_slice();
                    let p = params.get_mut(id).as_mut_slice();
                    kernels::adam_update(p, m, v, g.as_slice(), lr, b1, b2, eps, bc1, bc2);
                }
                GradBuf::Rows(rs) => {
                    let cols = rs.cols();
                    for (r, vals) in rs.iter() {
                        let r = r as usize;
                        let m = &mut self.m[i].as_mut_slice()[r * cols..(r + 1) * cols];
                        let v = &mut self.v[i].as_mut_slice()[r * cols..(r + 1) * cols];
                        let prow = params.get_mut(id).row_mut(r);
                        kernels::adam_update(prow, m, v, vals, lr, b1, b2, eps, bc1, bc2);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad::RowSparse;
    use crate::graph::Graph;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = Params::new();
        let w = p.push("w", Matrix::full(1, 2, 1.0));
        let mut grads = Grads::new_for(&p);
        *grads.slot_mut(w) = Some(GradBuf::Dense(Matrix::from_vec(1, 2, vec![1.0, -2.0])));
        Sgd::new(0.5).step(&mut p, &grads);
        assert_eq!(p.get(w).as_slice(), &[0.5, 2.0]);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize ||w - c||² for a fixed target c
        let mut p = Params::new();
        let w = p.push("w", Matrix::zeros(1, 3));
        let target = Matrix::from_vec(1, 3, vec![0.5, -1.0, 2.0]);
        let mut adam = Adam::with_defaults(&p, 0.05);
        for _ in 0..600 {
            let grads = {
                let mut g = Graph::new(&p);
                let wv = g.param(w);
                let t = g.leaf(target.clone());
                let d = g.sub(wv, t);
                let l = g.frob_sq(d);
                g.backward(l)
            };
            adam.step(&mut p, &grads);
        }
        assert!(p.get(w).max_abs_diff(&target) < 1e-2, "{:?}", p.get(w));
    }

    #[test]
    fn adam_fits_logistic_regression() {
        // separable 2-D data: label = x0 > x1
        let n = 64;
        let x = Matrix::from_fn(n, 2, |r, c| {
            let v = ((r * 7 + c * 13) % 17) as f32 / 17.0 - 0.5;
            v * 2.0
        });
        let targets: Vec<f32> =
            (0..n).map(|r| if x.get(r, 0) > x.get(r, 1) { 1.0 } else { 0.0 }).collect();
        let mut p = Params::new();
        let w = p.push("w", Matrix::zeros(2, 1));
        let b = p.push("b", Matrix::zeros(1, 1));
        let mut adam = Adam::with_defaults(&p, 0.05);
        let mut last_loss = f32::INFINITY;
        for _ in 0..400 {
            let (grads, loss) = {
                let mut g = Graph::new(&p);
                let xv = g.leaf(x.clone());
                let wv = g.param(w);
                let bv = g.param(b);
                let o = g.matmul(xv, wv);
                let o = g.add_row(o, bv);
                let l = g.bce_with_logits(o, &targets);
                (g.backward(l), g.scalar(l))
            };
            adam.step(&mut p, &grads);
            last_loss = loss;
        }
        assert!(last_loss < 0.1, "logistic loss did not converge: {last_loss}");
        // weights should point in the (+, −) direction
        assert!(p.get(w).get(0, 0) > 0.5);
        assert!(p.get(w).get(1, 0) < -0.5);
    }

    #[test]
    fn lazy_rows_match_dense_when_all_rows_touched() {
        // When every row receives gradient each step, lazy Adam must agree
        // exactly with the dense path.
        let init = Matrix::from_fn(3, 2, |r, c| 0.3 * (r as f32) - 0.2 * (c as f32) + 0.1);
        let grad = Matrix::from_fn(3, 2, |r, c| 0.05 * (r + 2 * c) as f32 + 0.01);

        let mut p_dense = Params::new();
        let id_d = p_dense.push("w", init.clone());
        let mut p_rows = Params::new();
        let id_r = p_rows.push("w", init.clone());

        let mut adam_d = Adam::with_defaults(&p_dense, 0.01);
        let mut adam_r = Adam::with_defaults(&p_rows, 0.01);

        for _ in 0..5 {
            let mut gd = Grads::new_for(&p_dense);
            *gd.slot_mut(id_d) = Some(GradBuf::Dense(grad.clone()));
            adam_d.step(&mut p_dense, &gd);

            let mut rs = RowSparse::new(2);
            for r in 0..3 {
                rs.add_row(r as u32, grad.row(r));
            }
            let mut gr = Grads::new_for(&p_rows);
            *gr.slot_mut(id_r) = Some(GradBuf::Rows(rs));
            adam_r.step(&mut p_rows, &gr);
        }
        assert!(p_dense.get(id_d).max_abs_diff(p_rows.get(id_r)) < 1e-6);
    }

    #[test]
    fn lazy_rows_leave_untouched_rows_alone() {
        let init = Matrix::full(4, 2, 1.0);
        let mut p = Params::new();
        let id = p.push("w", init);
        let mut adam = Adam::with_defaults(&p, 0.1);
        let mut rs = RowSparse::new(2);
        rs.add_row(2, &[1.0, 1.0]);
        let mut g = Grads::new_for(&p);
        *g.slot_mut(id) = Some(GradBuf::Rows(rs));
        adam.step(&mut p, &g);
        assert_eq!(p.get(id).row(0), &[1.0, 1.0], "untouched row moved");
        assert_eq!(p.get(id).row(3), &[1.0, 1.0], "untouched row moved");
        assert!(p.get(id).get(2, 0) < 1.0, "touched row did not move");
    }

    #[test]
    fn evicting_then_rematerializing_a_row_cannot_resurrect_stale_moments() {
        // Build up nonzero moments on every row, then evict row 1 the way
        // scoped models do (parameter row + moment rows together) and
        // re-materialize it. The fresh row must carry *zero* moments —
        // before `Adam::remove_row` existed, dropping only the parameter
        // row left the old moments in place, so the re-inserted row
        // inherited row 2's stale state one position out of register.
        let init = Matrix::from_fn(3, 2, |r, c| (r as f32) + 0.1 * (c as f32));
        let grad = Matrix::from_fn(3, 2, |r, c| 0.2 + 0.1 * (r + c) as f32);
        let mut p = Params::new();
        let id = p.push("w", init);
        let mut adam = Adam::with_defaults(&p, 0.01);
        for _ in 0..3 {
            let mut g = Grads::new_for(&p);
            *g.slot_mut(id) = Some(GradBuf::Dense(grad.clone()));
            adam.step(&mut p, &g);
        }
        let row2_m = adam.m[id.index()].row(2).to_vec();
        assert!(adam.m[id.index()].row(1).iter().any(|&x| x != 0.0), "moments must be warm");

        // evict row 1, coherently
        p.get_mut(id).remove_row(1);
        adam.remove_row(id, 1);
        assert_eq!(adam.m[id.index()].rows(), 2);
        assert_eq!(
            adam.m[id.index()].row(1),
            &row2_m[..],
            "surviving rows must keep their own moments"
        );

        // re-materialize it: zero moments, same global step counter
        p.get_mut(id).insert_row(1, &[0.0, 0.0]);
        adam.insert_zero_row(id, 1);
        assert_eq!(adam.m[id.index()].row(1), &[0.0, 0.0], "stale first moment resurrected");
        assert_eq!(adam.v[id.index()].row(1), &[0.0, 0.0], "stale second moment resurrected");
        assert_eq!(adam.steps(), 3, "eviction must not disturb the step counter");

        // and the dense counterpart: zeroing moments in place
        let mut g = Grads::new_for(&p);
        *g.slot_mut(id) = Some(GradBuf::Dense(grad.clone()));
        adam.step(&mut p, &g);
        adam.zero_moment_row(id, 1);
        assert_eq!(adam.m[id.index()].row(1), &[0.0, 0.0]);
        assert_eq!(adam.v[id.index()].row(1), &[0.0, 0.0]);
        assert!(adam.m[id.index()].row(0).iter().any(|&x| x != 0.0), "other rows untouched");
    }

    #[test]
    fn exported_state_resumes_bit_identically() {
        let init = Matrix::from_fn(3, 2, |r, c| 0.3 * (r as f32) - 0.2 * (c as f32) + 0.1);
        let grad = Matrix::from_fn(3, 2, |r, c| 0.05 * (r + 2 * c) as f32 + 0.01);
        let mut p = Params::new();
        let id = p.push("w", init);
        let mut adam = Adam::with_defaults(&p, 0.01);
        let mut g = Grads::new_for(&p);
        *g.slot_mut(id) = Some(GradBuf::Dense(grad.clone()));
        for _ in 0..4 {
            adam.step(&mut p, &g);
        }
        // snapshot, then diverge one copy and restore the other
        let (t, m, v) = adam.export_state();
        let p_snap = p.clone();
        let mut resumed = Adam::with_defaults(&p_snap, 0.01);
        resumed.restore_state(&p_snap, t, m, v).unwrap();
        assert_eq!(resumed.steps(), 4);

        let mut p_live = p.clone();
        let mut p_back = p_snap.clone();
        adam.step(&mut p_live, &g);
        resumed.step(&mut p_back, &g);
        assert_eq!(
            p_live.get(id).as_slice(),
            p_back.get(id).as_slice(),
            "restored optimizer diverged from the uninterrupted one"
        );

        // shape drift is rejected
        let mut other = Params::new();
        other.push("w", Matrix::zeros(2, 2));
        let (t, m, v) = adam.export_state();
        let mut bad = Adam::with_defaults(&other, 0.01);
        assert!(bad.restore_state(&other, t, m, v).is_err());
    }

    #[test]
    fn step_counter_advances() {
        let mut p = Params::new();
        p.push("w", Matrix::zeros(1, 1));
        let mut adam = Adam::with_defaults(&p, 0.1);
        let g = Grads::new_for(&p);
        adam.step(&mut p, &g);
        adam.step(&mut p, &g);
        assert_eq!(adam.steps(), 2);
    }
}
