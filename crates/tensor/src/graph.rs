//! Arena-backed tape for reverse-mode automatic differentiation.
//!
//! A [`Graph`] is built fresh for every training batch ("define-by-run"):
//! operations execute eagerly, recording just enough structure for
//! [`Graph::backward`] to replay the chain rule in reverse insertion order.
//! Parameters live *outside* the graph in a [`Params`] store that the graph
//! borrows; their gradients are returned in a [`Grads`] aligned with the
//! store, with embedding-style lookups producing row-sparse buffers.
//!
//! Tape state lives in a [`GraphArena`]: nodes are plain entries in a
//! `Vec` indexed by [`Var`] (no `Rc` cells), forward values and gradients
//! sit in parallel pools of reusable [`Matrix`] buffers, and variable-size
//! op payloads (gather indices, BCE targets, dropout masks) are staged as
//! ranges into shared scratch vectors. [`Graph::new`] owns a private arena
//! for one-off graphs; hot paths hold a long-lived arena and rebuild
//! batches over it with [`Graph::with_arena`], which [`GraphArena::reset`]s
//! lengths but keeps every buffer's capacity — after a warmup batch the
//! forward+backward pass performs no steady-state heap allocation.
//! [`GraphArena::recycle`] additionally parks a consumed [`Grads`] so the
//! gradient buffers themselves are reused across optimizer steps.

use crate::grad::{GradBuf, Grads, RowSparse};
use crate::kernels;
use crate::matrix::Matrix;
use crate::params::{ParamId, Params};
use crate::sparse::PropagationMatrix;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

/// `(start, len)` range into one of the arena's staging buffers.
type BufRange = (usize, usize);

#[derive(Clone, Copy, Debug)]
enum UnaryOp {
    Sigmoid,
    Relu,
    LeakyRelu(f32),
    Tanh,
    Neg,
}

#[derive(Clone, Copy, Debug)]
enum BinOp {
    Add,
    Sub,
    Mul,
}

#[derive(Clone)]
enum Source {
    /// Constant input; receives no gradient.
    Leaf,
    /// Trainable parameter; gradient goes to the [`Grads`] store.
    Param(ParamId),
    Unary {
        p: Var,
        op: UnaryOp,
    },
    Binary {
        a: Var,
        b: Var,
        op: BinOp,
    },
    MatMul {
        a: Var,
        b: Var,
    },
    /// `prop.forward() × b`; backward is `prop.backward() × dY`.
    Spmm {
        prop: PropagationMatrix,
        b: Var,
    },
    /// Row lookup; `idx` ranges into the arena's `idx_buf`.
    Gather {
        src: Var,
        idx: BufRange,
    },
    ConcatCols {
        a: Var,
        b: Var,
    },
    /// Row-wise dot product of two n×d matrices → n×1.
    RowDot {
        a: Var,
        b: Var,
    },
    SumAll {
        p: Var,
    },
    MeanAll {
        p: Var,
    },
    /// n×d matrix plus a 1×d row vector broadcast over rows.
    AddRow {
        m: Var,
        row: Var,
    },
    Scale {
        p: Var,
        c: f32,
    },
    /// Mean binary cross-entropy over an n×1 logit column; `targets`
    /// ranges into the arena's `f32_buf`.
    BceWithLogits {
        logits: Var,
        targets: BufRange,
    },
    /// Mean BPR (pairwise) loss over two n×1 logit columns.
    BprLoss {
        pos: Var,
        neg: Var,
    },
    /// Squared Frobenius norm → 1×1 (for L2 regularization).
    FrobSq {
        p: Var,
    },
    /// Inverted dropout: forward multiplies by a frozen 0/(1−rate)⁻¹
    /// mask; `mask` ranges into the arena's `f32_buf`.
    Dropout {
        p: Var,
        mask: BufRange,
    },
}

#[derive(Clone, Copy)]
enum ValRef {
    /// Value owned by the arena's `vals` pool.
    Slot(usize),
    /// Value lives in the borrowed parameter store.
    Param(ParamId),
}

struct Node {
    value: ValRef,
    src: Source,
}

/// Reusable tape storage shared across batches (see module docs).
///
/// `Default`-constructed arenas are empty and allocation-free; buffers
/// grow on first use and are then reused by every later graph built with
/// [`Graph::with_arena`].
#[derive(Default)]
pub struct GraphArena {
    nodes: Vec<Node>,
    /// Forward-value pool; slots `..vals_used` belong to the live graph,
    /// later slots are parked buffers from earlier (larger) graphs.
    vals: Vec<Matrix>,
    vals_used: usize,
    /// Per-node gradient pool, parallel to `nodes`.
    gvals: Vec<Matrix>,
    /// Whether `gvals[i]` holds a live gradient for the current backward.
    gset: Vec<bool>,
    /// Staged gather indices.
    idx_buf: Vec<u32>,
    /// Staged f32 payloads (BCE targets, dropout masks).
    f32_buf: Vec<f32>,
    /// Recycled per-parameter gradient buffers, aligned with [`Params`].
    spare_bufs: Vec<Option<GradBuf>>,
    /// Recycled [`Grads`] shell.
    spare_grads: Option<Grads>,
}

impl GraphArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears per-graph state, keeping every buffer's capacity. Called by
    /// [`Graph::with_arena`]; only needed directly when reusing an arena
    /// without building a graph.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.vals_used = 0;
        self.idx_buf.clear();
        self.f32_buf.clear();
        self.gset.clear();
    }

    /// Parks a consumed [`Grads`] (after the optimizer step) so the next
    /// [`Graph::backward`] over this arena reuses its buffers instead of
    /// allocating: dense gradients keep their matrices (re-zeroed on
    /// reuse), row-sparse ones keep their table capacity.
    pub fn recycle(&mut self, mut grads: Grads) {
        let n = grads.bufs.len();
        if self.spare_bufs.len() < n {
            self.spare_bufs.resize_with(n, || None);
        }
        for (i, slot) in grads.bufs.iter_mut().enumerate() {
            if let Some(mut buf) = slot.take() {
                if let GradBuf::Rows(rs) = &mut buf {
                    rs.clear();
                }
                self.spare_bufs[i] = Some(buf);
            }
        }
        grads.bufs.clear();
        self.spare_grads = Some(grads);
    }

    fn idx_range(&self, (start, len): BufRange) -> &[u32] {
        &self.idx_buf[start..start + len]
    }

    fn f32_range(&self, (start, len): BufRange) -> &[f32] {
        &self.f32_buf[start..start + len]
    }
}

enum ArenaRef<'p> {
    Owned(Box<GraphArena>),
    Borrowed(&'p mut GraphArena),
}

/// Where a taken gradient-destination buffer must be returned to.
enum DestSlot {
    Node(usize),
    Param(ParamId),
}

/// A single-batch autodiff tape over a borrowed parameter store.
pub struct Graph<'p> {
    params: &'p Params,
    arena: ArenaRef<'p>,
}

/// `out = f(x)`, element-wise, reusing `out`'s buffer.
fn map_into(out: &mut Matrix, x: &Matrix, f: impl Fn(f32) -> f32) {
    out.reset_to(x.rows(), x.cols());
    for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *o = f(v);
    }
}

/// `out = f(x, y)`, element-wise, reusing `out`'s buffer.
fn zip_into(out: &mut Matrix, x: &Matrix, y: &Matrix, f: impl Fn(f32, f32) -> f32) {
    assert_eq!(x.shape(), y.shape(), "zip_map shape mismatch");
    out.reset_to(x.rows(), x.cols());
    for ((o, &a), &b) in out.as_mut_slice().iter_mut().zip(x.as_slice()).zip(y.as_slice()) {
        *o = f(a, b);
    }
}

impl<'p> Graph<'p> {
    /// A graph over a fresh private arena (one-off use: tests, scoring).
    pub fn new(params: &'p Params) -> Self {
        Self { params, arena: ArenaRef::Owned(Box::default()) }
    }

    /// A graph over a caller-owned arena, reusing its buffers. This is
    /// the hot-path constructor: hold one [`GraphArena`] per model and
    /// rebuild every batch's tape over it.
    pub fn with_arena(params: &'p Params, arena: &'p mut GraphArena) -> Self {
        arena.reset();
        Self { params, arena: ArenaRef::Borrowed(arena) }
    }

    fn arena(&self) -> &GraphArena {
        match &self.arena {
            ArenaRef::Owned(a) => a,
            ArenaRef::Borrowed(a) => a,
        }
    }

    fn arena_mut(&mut self) -> &mut GraphArena {
        match &mut self.arena {
            ArenaRef::Owned(a) => a,
            ArenaRef::Borrowed(a) => a,
        }
    }

    /// Claims the next pooled value slot, handing out its (taken) buffer.
    fn new_slot(&mut self) -> (usize, Matrix) {
        let a = self.arena_mut();
        if a.vals_used == a.vals.len() {
            a.vals.push(Matrix::default());
        }
        let s = a.vals_used;
        a.vals_used += 1;
        (s, std::mem::take(&mut a.vals[s]))
    }

    /// Returns a filled buffer to its slot and records the node.
    fn finish(&mut self, slot: usize, value: Matrix, src: Source) -> Var {
        let a = self.arena_mut();
        a.vals[slot] = value;
        a.nodes.push(Node { value: ValRef::Slot(slot), src });
        Var(a.nodes.len() - 1)
    }

    fn stage_idx(&mut self, idx: &[u32]) -> BufRange {
        let a = self.arena_mut();
        let start = a.idx_buf.len();
        a.idx_buf.extend_from_slice(idx);
        (start, idx.len())
    }

    fn stage_f32(&mut self, vals: &[f32]) -> BufRange {
        let a = self.arena_mut();
        let start = a.f32_buf.len();
        a.f32_buf.extend_from_slice(vals);
        (start, vals.len())
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        match self.arena().nodes[v.0].value {
            ValRef::Slot(s) => &self.arena().vals[s],
            ValRef::Param(id) => self.params.get(id),
        }
    }

    /// Shape of the forward value of `v`.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.value(v).shape()
    }

    /// The scalar held by a 1×1 node (e.g. a loss).
    pub fn scalar(&self, v: Var) -> f32 {
        self.value(v).scalar()
    }

    /// Inserts a constant (no gradient flows into it).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.leaf_ref(&value)
    }

    /// Like [`Graph::leaf`], but copies from a borrowed matrix into a
    /// pooled buffer, so hot paths can keep a reusable staging matrix on
    /// the caller's side.
    pub fn leaf_ref(&mut self, value: &Matrix) -> Var {
        let (s, mut out) = self.new_slot();
        out.reset_to(value.rows(), value.cols());
        out.as_mut_slice().copy_from_slice(value.as_slice());
        self.finish(s, out, Source::Leaf)
    }

    /// Inserts a reference to parameter `id` (no copy is made).
    pub fn param(&mut self, id: ParamId) -> Var {
        assert!(id.index() < self.params.len(), "unknown ParamId");
        let a = self.arena_mut();
        a.nodes.push(Node { value: ValRef::Param(id), src: Source::Param(id) });
        Var(a.nodes.len() - 1)
    }

    /// Dense matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (s, mut out) = self.new_slot();
        self.value(a).matmul_into(self.value(b), &mut out);
        self.finish(s, out, Source::MatMul { a, b })
    }

    /// Sparse propagation `prop × b` (NGCF/LightGCN message passing).
    pub fn spmm(&mut self, prop: &PropagationMatrix, b: Var) -> Var {
        let (s, mut out) = self.new_slot();
        prop.forward().matmul_into(self.value(b), &mut out);
        self.finish(s, out, Source::Spmm { prop: prop.clone(), b })
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (s, mut out) = self.new_slot();
        zip_into(&mut out, self.value(a), self.value(b), |x, y| x + y);
        self.finish(s, out, Source::Binary { a, b, op: BinOp::Add })
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (s, mut out) = self.new_slot();
        zip_into(&mut out, self.value(a), self.value(b), |x, y| x - y);
        self.finish(s, out, Source::Binary { a, b, op: BinOp::Sub })
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (s, mut out) = self.new_slot();
        zip_into(&mut out, self.value(a), self.value(b), |x, y| x * y);
        self.finish(s, out, Source::Binary { a, b, op: BinOp::Mul })
    }

    /// Multiplication by a compile-time constant.
    pub fn scale(&mut self, p: Var, c: f32) -> Var {
        let (s, mut out) = self.new_slot();
        map_into(&mut out, self.value(p), |x| c * x);
        self.finish(s, out, Source::Scale { p, c })
    }

    pub fn sigmoid(&mut self, p: Var) -> Var {
        let (s, mut out) = self.new_slot();
        map_into(&mut out, self.value(p), sigmoid);
        self.finish(s, out, Source::Unary { p, op: UnaryOp::Sigmoid })
    }

    pub fn relu(&mut self, p: Var) -> Var {
        let (s, mut out) = self.new_slot();
        map_into(&mut out, self.value(p), |x| x.max(0.0));
        self.finish(s, out, Source::Unary { p, op: UnaryOp::Relu })
    }

    /// Leaky ReLU with negative slope `alpha` (NGCF uses 0.2).
    pub fn leaky_relu(&mut self, p: Var, alpha: f32) -> Var {
        let (s, mut out) = self.new_slot();
        map_into(&mut out, self.value(p), |x| if x > 0.0 { x } else { alpha * x });
        self.finish(s, out, Source::Unary { p, op: UnaryOp::LeakyRelu(alpha) })
    }

    pub fn tanh(&mut self, p: Var) -> Var {
        let (s, mut out) = self.new_slot();
        map_into(&mut out, self.value(p), f32::tanh);
        self.finish(s, out, Source::Unary { p, op: UnaryOp::Tanh })
    }

    pub fn neg(&mut self, p: Var) -> Var {
        let (s, mut out) = self.new_slot();
        map_into(&mut out, self.value(p), |x| -x);
        self.finish(s, out, Source::Unary { p, op: UnaryOp::Neg })
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ar, br, "concat_cols: row mismatch {ar} vs {br}");
        let (s, mut out) = self.new_slot();
        out.reset_to(ar, ac + bc);
        let av = self.value(a);
        let bv = self.value(b);
        for r in 0..ar {
            out.row_mut(r)[..ac].copy_from_slice(av.row(r));
            out.row_mut(r)[ac..].copy_from_slice(bv.row(r));
        }
        self.finish(s, out, Source::ConcatCols { a, b })
    }

    /// Gathers rows `idx` of `src` (embedding lookup). Gradients to a
    /// parameter source are accumulated row-sparsely.
    pub fn gather(&mut self, src: Var, idx: &[u32]) -> Var {
        let range = self.stage_idx(idx);
        let (s, mut out) = self.new_slot();
        self.value(src).gather_rows_into(idx, &mut out);
        self.finish(s, out, Source::Gather { src, idx: range })
    }

    /// Row-wise dot product of two equally-shaped matrices → n×1 column.
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        let (ar, ac) = self.shape(a);
        assert_eq!((ar, ac), self.shape(b), "row_dot shape mismatch");
        let (s, mut out) = self.new_slot();
        out.reset_to(ar, 1);
        let av = self.value(a);
        let bv = self.value(b);
        for r in 0..ar {
            out.as_mut_slice()[r] = kernels::dot(av.row(r), bv.row(r));
        }
        self.finish(s, out, Source::RowDot { a, b })
    }

    /// Sum of all elements → 1×1.
    pub fn sum_all(&mut self, p: Var) -> Var {
        let (s, mut out) = self.new_slot();
        out.reset_to(1, 1);
        out.as_mut_slice()[0] = self.value(p).sum();
        self.finish(s, out, Source::SumAll { p })
    }

    /// Mean of all elements → 1×1.
    pub fn mean_all(&mut self, p: Var) -> Var {
        let (s, mut out) = self.new_slot();
        out.reset_to(1, 1);
        let n = self.value(p).len() as f32;
        out.as_mut_slice()[0] = self.value(p).sum() / n;
        self.finish(s, out, Source::MeanAll { p })
    }

    /// Squared Frobenius norm → 1×1.
    pub fn frob_sq(&mut self, p: Var) -> Var {
        let (s, mut out) = self.new_slot();
        out.reset_to(1, 1);
        out.as_mut_slice()[0] = self.value(p).frob_sq();
        self.finish(s, out, Source::FrobSq { p })
    }

    /// Broadcast-adds a 1×d row vector over the rows of an n×d matrix.
    pub fn add_row(&mut self, m: Var, row: Var) -> Var {
        let (mr, mc) = self.shape(m);
        let (rr, rc) = self.shape(row);
        assert_eq!((rr, rc), (1, mc), "add_row: bias must be 1x{mc}, got {rr}x{rc}");
        let (s, mut out) = self.new_slot();
        out.reset_to(mr, mc);
        out.as_mut_slice().copy_from_slice(self.value(m).as_slice());
        let bias = self.value(row);
        for r in 0..mr {
            kernels::add_assign(out.row_mut(r), bias.as_slice());
        }
        self.finish(s, out, Source::AddRow { m, row })
    }

    /// Numerically stable mean binary cross-entropy over an n×1 logit
    /// column with (possibly soft) targets in `[0, 1]` → 1×1.
    ///
    /// `loss = mean_i [ max(xᵢ,0) − xᵢ·tᵢ + ln(1 + e^{−|xᵢ|}) ]`
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        let (n, c) = self.shape(logits);
        assert_eq!(c, 1, "bce_with_logits expects an n×1 logit column");
        assert_eq!(n, targets.len(), "bce_with_logits: {n} logits vs {} targets", targets.len());
        let range = self.stage_f32(targets);
        let (s, mut out) = self.new_slot();
        out.reset_to(1, 1);
        let x = self.value(logits).as_slice();
        let mut total = 0.0f64;
        for (&xi, &ti) in x.iter().zip(targets) {
            debug_assert!((0.0..=1.0).contains(&ti), "target {ti} outside [0,1]");
            total += (xi.max(0.0) - xi * ti + (-xi.abs()).exp().ln_1p()) as f64;
        }
        out.as_mut_slice()[0] = (total / n as f64) as f32;
        self.finish(s, out, Source::BceWithLogits { logits, targets: range })
    }

    /// Mean Bayesian Personalized Ranking loss `−mean ln σ(xᵖ − xⁿ)` over
    /// paired n×1 logit columns (positive item vs sampled negative).
    pub fn bpr_loss(&mut self, pos: Var, neg: Var) -> Var {
        let (n, c) = self.shape(pos);
        assert_eq!(c, 1, "bpr_loss expects n×1 logit columns");
        assert_eq!((n, c), self.shape(neg), "bpr_loss: pos/neg shape mismatch");
        let (s, mut out) = self.new_slot();
        out.reset_to(1, 1);
        let p = self.value(pos).as_slice();
        let q = self.value(neg).as_slice();
        let mut total = 0.0f64;
        for (&xp, &xn) in p.iter().zip(q) {
            let d = xp - xn;
            // −ln σ(d) = softplus(−d), computed stably
            total += ((-d).max(0.0) + (-(-d).abs()).exp().ln_1p()) as f64;
        }
        out.as_mut_slice()[0] = (total / n as f64) as f32;
        self.finish(s, out, Source::BprLoss { pos, neg })
    }

    /// Inverted dropout with the given drop `rate`: each element is zeroed
    /// with probability `rate` and survivors are scaled by `1/(1−rate)`,
    /// so expectations match the identity at inference time (where callers
    /// simply skip this op).
    pub fn dropout(&mut self, p: Var, rate: f32, rng: &mut impl rand::Rng) -> Var {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1), got {rate}");
        if rate == 0.0 {
            return p;
        }
        let keep = 1.0 - rate;
        let scale = 1.0 / keep;
        let n = self.value(p).len();
        let range = {
            let a = self.arena_mut();
            let start = a.f32_buf.len();
            for _ in 0..n {
                a.f32_buf.push(if rng.gen::<f32>() < keep { scale } else { 0.0 });
            }
            (start, n)
        };
        let (s, mut out) = self.new_slot();
        {
            let x = self.value(p);
            out.reset_to(x.rows(), x.cols());
            let mask = self.arena().f32_range(range);
            for ((o, &v), &m) in out.as_mut_slice().iter_mut().zip(x.as_slice()).zip(mask) {
                *o = v * m;
            }
        }
        self.finish(s, out, Source::Dropout { p, mask: range })
    }

    /// Runs the chain rule backwards from the 1×1 node `loss`, returning
    /// gradients for every parameter the loss depends on. Gradients are
    /// accumulated in the arena's pooled buffers; recycled [`Grads`]
    /// storage (see [`GraphArena::recycle`]) is reused when available.
    ///
    /// # Panics
    /// If `loss` is not 1×1.
    pub fn backward(&mut self, loss: Var) -> Grads {
        assert_eq!(self.shape(loss), (1, 1), "backward: loss must be a 1×1 scalar");
        let n = self.arena().nodes.len();
        let params_len = self.params.len();
        {
            let a = self.arena_mut();
            if a.gvals.len() < n {
                a.gvals.resize_with(n, Matrix::default);
            }
            a.gset.clear();
            a.gset.resize(n, false);
            if a.spare_bufs.len() < params_len {
                a.spare_bufs.resize_with(params_len, || None);
            }
        }
        let mut grads = match self.arena_mut().spare_grads.take() {
            Some(mut g) => {
                g.reset_for(self.params);
                g
            }
            None => Grads::new_for(self.params),
        };
        {
            let a = self.arena_mut();
            a.gvals[loss.0].reset_to(1, 1);
            a.gvals[loss.0].as_mut_slice()[0] = 1.0;
            a.gset[loss.0] = true;
        }

        for i in (0..=loss.0).rev() {
            if !self.arena().gset[i] {
                continue;
            }
            let g = std::mem::take(&mut self.arena_mut().gvals[i]);
            let src = self.arena().nodes[i].src.clone();
            match src {
                Source::Leaf => {}
                Source::Param(_) => {
                    // the seed node was the parameter itself
                    self.add_to(&mut grads, Var(i), |_, d| {
                        kernels::add_assign(d.as_mut_slice(), g.as_slice());
                    });
                }
                Source::Unary { p, op } => {
                    self.add_to(&mut grads, p, |s, d| {
                        let gs = g.as_slice();
                        let dst = d.as_mut_slice();
                        match op {
                            UnaryOp::Sigmoid => {
                                // y(1-y) in terms of the stored output
                                let y = s.value(Var(i)).as_slice();
                                for k in 0..dst.len() {
                                    dst[k] += y[k] * (1.0 - y[k]) * gs[k];
                                }
                            }
                            UnaryOp::Relu => {
                                let x = s.value(p).as_slice();
                                for k in 0..dst.len() {
                                    dst[k] += if x[k] > 0.0 { gs[k] } else { 0.0 };
                                }
                            }
                            UnaryOp::LeakyRelu(a) => {
                                let x = s.value(p).as_slice();
                                for k in 0..dst.len() {
                                    dst[k] += if x[k] > 0.0 { gs[k] } else { a * gs[k] };
                                }
                            }
                            UnaryOp::Tanh => {
                                let y = s.value(Var(i)).as_slice();
                                for k in 0..dst.len() {
                                    dst[k] += (1.0 - y[k] * y[k]) * gs[k];
                                }
                            }
                            UnaryOp::Neg => {
                                for k in 0..dst.len() {
                                    dst[k] -= gs[k];
                                }
                            }
                        }
                    });
                }
                Source::Binary { a, b, op } => match op {
                    BinOp::Add => {
                        self.add_to(&mut grads, a, |_, d| {
                            kernels::add_assign(d.as_mut_slice(), g.as_slice());
                        });
                        self.add_to(&mut grads, b, |_, d| {
                            kernels::add_assign(d.as_mut_slice(), g.as_slice());
                        });
                    }
                    BinOp::Sub => {
                        self.add_to(&mut grads, a, |_, d| {
                            kernels::add_assign(d.as_mut_slice(), g.as_slice());
                        });
                        self.add_to(&mut grads, b, |_, d| {
                            for (dd, &gv) in d.as_mut_slice().iter_mut().zip(g.as_slice()) {
                                *dd -= gv;
                            }
                        });
                    }
                    BinOp::Mul => {
                        self.add_to(&mut grads, a, |s, d| {
                            let bv = s.value(b).as_slice();
                            let gs = g.as_slice();
                            for (k, dd) in d.as_mut_slice().iter_mut().enumerate() {
                                *dd += bv[k] * gs[k];
                            }
                        });
                        self.add_to(&mut grads, b, |s, d| {
                            let av = s.value(a).as_slice();
                            let gs = g.as_slice();
                            for (k, dd) in d.as_mut_slice().iter_mut().enumerate() {
                                *dd += av[k] * gs[k];
                            }
                        });
                    }
                },
                Source::MatMul { a, b } => {
                    // dA += g × Bᵀ, dB += Aᵀ × g — both transpose-free
                    self.add_to(&mut grads, a, |s, d| g.matmul_nt_acc(s.value(b), d));
                    self.add_to(&mut grads, b, |s, d| s.value(a).matmul_tn_acc(&g, d));
                }
                Source::Spmm { prop, b } => {
                    self.add_to(&mut grads, b, |_, d| prop.backward().matmul_acc(&g, d));
                }
                Source::Gather { src, idx } => {
                    let param_src = match &self.arena().nodes[src.0].src {
                        Source::Param(id) => Some(*id),
                        _ => None,
                    };
                    if let Some(id) = param_src {
                        // Row-sparse fast path straight into a parameter table.
                        let cols = self.params.get(id).cols();
                        self.ensure_param_rows(&mut grads, id, cols);
                        let idx_s = self.arena().idx_range(idx);
                        if let Some(buf) = grads.slot_mut(id).as_mut() {
                            buf.add_rows(idx_s, &g);
                        }
                    } else {
                        self.add_to(&mut grads, src, |s, d| {
                            d.scatter_add_rows(s.arena().idx_range(idx), &g);
                        });
                    }
                }
                Source::ConcatCols { a, b } => {
                    let ac = self.shape(a).1;
                    self.add_to(&mut grads, a, |_, d| {
                        for r in 0..g.rows() {
                            kernels::add_assign(d.row_mut(r), &g.row(r)[..ac]);
                        }
                    });
                    self.add_to(&mut grads, b, |_, d| {
                        for r in 0..g.rows() {
                            kernels::add_assign(d.row_mut(r), &g.row(r)[ac..]);
                        }
                    });
                }
                Source::RowDot { a, b } => {
                    self.add_to(&mut grads, a, |s, d| {
                        let bv = s.value(b);
                        for r in 0..bv.rows() {
                            kernels::axpy(g.as_slice()[r], bv.row(r), d.row_mut(r));
                        }
                    });
                    self.add_to(&mut grads, b, |s, d| {
                        let av = s.value(a);
                        for r in 0..av.rows() {
                            kernels::axpy(g.as_slice()[r], av.row(r), d.row_mut(r));
                        }
                    });
                }
                Source::SumAll { p } => {
                    let sv = g.scalar();
                    self.add_to(&mut grads, p, |_, d| {
                        for dd in d.as_mut_slice() {
                            *dd += sv;
                        }
                    });
                }
                Source::MeanAll { p } => {
                    let nf = self.value(p).len() as f32;
                    let sv = g.scalar() / nf;
                    self.add_to(&mut grads, p, |_, d| {
                        for dd in d.as_mut_slice() {
                            *dd += sv;
                        }
                    });
                }
                Source::FrobSq { p } => {
                    let sv = g.scalar();
                    self.add_to(&mut grads, p, |s, d| {
                        let x = s.value(p).as_slice();
                        for (dd, &xv) in d.as_mut_slice().iter_mut().zip(x) {
                            *dd += 2.0 * sv * xv;
                        }
                    });
                }
                Source::AddRow { m, row } => {
                    self.add_to(&mut grads, m, |_, d| {
                        kernels::add_assign(d.as_mut_slice(), g.as_slice());
                    });
                    self.add_to(&mut grads, row, |_, d| {
                        for r in 0..g.rows() {
                            kernels::add_assign(d.as_mut_slice(), g.row(r));
                        }
                    });
                }
                Source::Scale { p, c } => {
                    self.add_to(&mut grads, p, |_, d| {
                        kernels::axpy(c, g.as_slice(), d.as_mut_slice());
                    });
                }
                Source::BceWithLogits { logits, targets } => {
                    let sv = g.scalar();
                    self.add_to(&mut grads, logits, |s, d| {
                        let x = s.value(logits).as_slice();
                        let t = s.arena().f32_range(targets);
                        let nf = t.len() as f32;
                        for (k, &ti) in t.iter().enumerate() {
                            d.as_mut_slice()[k] += sv * (sigmoid(x[k]) - ti) / nf;
                        }
                    });
                }
                Source::BprLoss { pos, neg } => {
                    let sv = g.scalar();
                    // d/dxp [−ln σ(xp−xn)] = −σ(xn−xp); the negative of dxn
                    self.add_to(&mut grads, pos, |s, d| {
                        let pv = s.value(pos).as_slice();
                        let qv = s.value(neg).as_slice();
                        let nf = pv.len() as f32;
                        for (k, dd) in d.as_mut_slice().iter_mut().enumerate() {
                            *dd -= sv * sigmoid(qv[k] - pv[k]) / nf;
                        }
                    });
                    self.add_to(&mut grads, neg, |s, d| {
                        let pv = s.value(pos).as_slice();
                        let qv = s.value(neg).as_slice();
                        let nf = pv.len() as f32;
                        for (k, dd) in d.as_mut_slice().iter_mut().enumerate() {
                            *dd += sv * sigmoid(qv[k] - pv[k]) / nf;
                        }
                    });
                }
                Source::Dropout { p, mask } => {
                    self.add_to(&mut grads, p, |s, d| {
                        let mv = s.arena().f32_range(mask);
                        let gs = g.as_slice();
                        for (k, dd) in d.as_mut_slice().iter_mut().enumerate() {
                            *dd += gs[k] * mv[k];
                        }
                    });
                }
            }
            // return the buffer so the next backward reuses its capacity
            self.arena_mut().gvals[i] = g;
        }
        grads
    }

    /// Adds a gradient contribution to `target`: takes its destination
    /// buffer (node-grad pool or parameter slot), lets `f` accumulate
    /// into it, and returns it. Leaves absorb nothing.
    fn add_to(&mut self, grads: &mut Grads, target: Var, f: impl FnOnce(&Self, &mut Matrix)) {
        let Some((slot, mut dst)) = self.take_dest(grads, target) else { return };
        f(self, &mut dst);
        self.put_dest(grads, slot, dst);
    }

    fn take_dest(&mut self, grads: &mut Grads, target: Var) -> Option<(DestSlot, Matrix)> {
        let param_id = match &self.arena().nodes[target.0].src {
            Source::Leaf => return None, // constants absorb nothing
            Source::Param(id) => Some(*id),
            _ => None,
        };
        if let Some(id) = param_id {
            Some((DestSlot::Param(id), self.take_param_dense(grads, id)))
        } else {
            let t = target.0;
            if !self.arena().gset[t] {
                let (r, c) = self.shape(target);
                let a = self.arena_mut();
                a.gvals[t].reset_to(r, c);
                a.gset[t] = true;
            }
            Some((DestSlot::Node(t), std::mem::take(&mut self.arena_mut().gvals[t])))
        }
    }

    fn put_dest(&mut self, grads: &mut Grads, slot: DestSlot, m: Matrix) {
        match slot {
            DestSlot::Node(t) => self.arena_mut().gvals[t] = m,
            DestSlot::Param(id) => *grads.slot_mut(id) = Some(GradBuf::Dense(m)),
        }
    }

    /// Takes the dense gradient matrix for parameter `id`, creating (or
    /// recycling) a zeroed one on first touch and promoting a row-sparse
    /// buffer if a dense contribution arrives on top of gathered rows.
    fn take_param_dense(&mut self, grads: &mut Grads, id: ParamId) -> Matrix {
        match grads.slot_mut(id).take() {
            Some(GradBuf::Dense(m)) => m,
            Some(GradBuf::Rows(rs)) => {
                // rare: the same table fed both a gather and a dense op
                let mut d = self.fresh_param_dense(id);
                rs.add_into_dense(&mut d);
                d
            }
            None => self.fresh_param_dense(id),
        }
    }

    /// A zeroed dense gradient for `id`, recycled from the arena's spare
    /// buffers when one of the right kind is parked there.
    fn fresh_param_dense(&mut self, id: ParamId) -> Matrix {
        let (r, c) = self.params.get(id).shape();
        let slot = &mut self.arena_mut().spare_bufs[id.index()];
        if matches!(slot, Some(GradBuf::Dense(_))) {
            if let Some(GradBuf::Dense(mut m)) = slot.take() {
                m.reset_to(r, c);
                return m;
            }
        }
        Matrix::zeros(r, c)
    }

    /// Ensures parameter `id` has a gradient buffer for row-sparse
    /// accumulation, recycling a parked one when its width matches.
    fn ensure_param_rows(&mut self, grads: &mut Grads, id: ParamId, cols: usize) {
        if grads.get(id).is_some() {
            return;
        }
        let slot = &mut self.arena_mut().spare_bufs[id.index()];
        let take_spare = matches!(slot, Some(GradBuf::Rows(rs)) if rs.cols() == cols);
        let rs = if take_spare {
            match slot.take() {
                Some(GradBuf::Rows(rs)) => rs,
                _ => unreachable!(),
            }
        } else {
            RowSparse::new(cols)
        };
        *grads.slot_mut(id) = Some(GradBuf::Rows(rs));
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Matrix {
    /// Zero matrix with the same shape as `other`.
    pub fn zeros_like(other: &Matrix) -> Matrix {
        Matrix::zeros(other.rows(), other.cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Csr;

    /// Central finite differences of `loss(params)` w.r.t. parameter `id`.
    fn numeric_grad(params: &mut Params, id: ParamId, loss: &dyn Fn(&Params) -> f32) -> Matrix {
        let eps = 1e-2f32;
        let (rows, cols) = params.get(id).shape();
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let orig = params.get(id).get(i, j);
                params.get_mut(id).set(i, j, orig + eps);
                let hi = loss(params);
                params.get_mut(id).set(i, j, orig - eps);
                let lo = loss(params);
                params.get_mut(id).set(i, j, orig);
                out.set(i, j, (hi - lo) / (2.0 * eps));
            }
        }
        out
    }

    /// Asserts analytic gradients match finite differences for every param.
    fn assert_grads_match(params: &mut Params, build: &dyn Fn(&mut Graph) -> Var, tol: f32) {
        let grads = {
            let mut g = Graph::new(params);
            let l = build(&mut g);
            assert_eq!(g.shape(l), (1, 1), "test losses must be scalar");
            g.backward(l)
        };
        let ids: Vec<ParamId> = params.iter().map(|(id, _, _)| id).collect();
        for id in ids {
            let analytic = grads.dense(id, params);
            let numeric = numeric_grad(params, id, &|p| {
                let mut g = Graph::new(p);
                let l = build(&mut g);
                g.scalar(l)
            });
            let diff = analytic.max_abs_diff(&numeric);
            assert!(
                diff < tol,
                "gradient mismatch for param {}: max abs diff {diff}\nanalytic {:?}\nnumeric {:?}",
                id.index(),
                analytic.as_slice(),
                numeric.as_slice()
            );
        }
    }

    /// Deterministic "random-ish" values away from ReLU kinks.
    fn test_matrix(rows: usize, cols: usize, scale: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let v = ((r * 31 + c * 17 + 7) % 13) as f32 / 13.0 - 0.5;
            scale * (v + 0.08 * v.signum().max(0.0) + 0.12)
        })
    }

    #[test]
    fn matmul_grad() {
        let mut p = Params::new();
        p.push("a", test_matrix(2, 3, 1.0));
        p.push("b", test_matrix(3, 2, 1.0));
        assert_grads_match(
            &mut p,
            &|g| {
                let ids: Vec<ParamId> = (0..2).map(ParamId).collect();
                let a = g.param(ids[0]);
                let b = g.param(ids[1]);
                let c = g.matmul(a, b);
                g.sum_all(c)
            },
            1e-2,
        );
    }

    #[test]
    fn elementwise_grads() {
        let mut p = Params::new();
        p.push("a", test_matrix(3, 2, 0.8));
        p.push("b", test_matrix(3, 2, 0.6));
        assert_grads_match(
            &mut p,
            &|g| {
                let a = g.param(ParamId(0));
                let b = g.param(ParamId(1));
                let s = g.add(a, b);
                let d = g.sub(s, b);
                let m = g.mul(d, b);
                let sc = g.scale(m, 1.7);
                let n = g.neg(sc);
                g.mean_all(n)
            },
            1e-2,
        );
    }

    #[test]
    fn activation_grads() {
        let mut p = Params::new();
        p.push("x", test_matrix(4, 3, 1.5));
        assert_grads_match(
            &mut p,
            &|g| {
                let x = g.param(ParamId(0));
                let a = g.sigmoid(x);
                let b = g.tanh(a);
                let c = g.leaky_relu(b, 0.2);
                let d = g.relu(c);
                g.sum_all(d)
            },
            2e-2,
        );
    }

    #[test]
    fn concat_and_addrow_grads() {
        let mut p = Params::new();
        p.push("a", test_matrix(3, 2, 1.0));
        p.push("b", test_matrix(3, 2, 0.5));
        p.push("bias", test_matrix(1, 4, 0.3));
        assert_grads_match(
            &mut p,
            &|g| {
                let a = g.param(ParamId(0));
                let b = g.param(ParamId(1));
                let cat = g.concat_cols(a, b);
                let bias = g.param(ParamId(2));
                let biased = g.add_row(cat, bias);
                let act = g.tanh(biased);
                g.mean_all(act)
            },
            1e-2,
        );
    }

    #[test]
    fn row_dot_grad() {
        let mut p = Params::new();
        p.push("a", test_matrix(4, 3, 1.0));
        p.push("b", test_matrix(4, 3, 0.7));
        assert_grads_match(
            &mut p,
            &|g| {
                let a = g.param(ParamId(0));
                let b = g.param(ParamId(1));
                let d = g.row_dot(a, b);
                g.sum_all(d)
            },
            1e-2,
        );
    }

    #[test]
    fn gather_param_grad_is_row_sparse_and_correct() {
        let mut p = Params::new();
        let emb = p.push("emb", test_matrix(6, 3, 1.0));
        let idx: Vec<u32> = vec![4, 1, 4, 0];
        // analytic
        let grads = {
            let mut g = Graph::new(&p);
            let e = g.param(emb);
            let rows = g.gather(e, &idx);
            let l = g.sum_all(rows);
            g.backward(l)
        };
        match grads.get(emb) {
            Some(GradBuf::Rows(rs)) => {
                assert_eq!(rs.num_rows(), 3, "three distinct rows touched");
            }
            other => panic!("expected row-sparse grad, got {other:?}"),
        }
        let idx2 = idx.clone();
        assert_grads_match(
            &mut p,
            &move |g| {
                let e = g.param(ParamId(0));
                let rows = g.gather(e, &idx2);
                g.sum_all(rows)
            },
            1e-2,
        );
    }

    #[test]
    fn gather_from_intermediate_grad() {
        let mut p = Params::new();
        p.push("a", test_matrix(4, 2, 1.0));
        p.push("b", test_matrix(2, 2, 1.0));
        assert_grads_match(
            &mut p,
            &|g| {
                let a = g.param(ParamId(0));
                let b = g.param(ParamId(1));
                let prod = g.matmul(a, b); // intermediate, 4x2
                let rows = g.gather(prod, &[3, 3, 0]);
                g.sum_all(rows)
            },
            1e-2,
        );
    }

    #[test]
    fn spmm_matches_dense_and_grad() {
        let adj = Csr::from_triplets(
            3,
            4,
            &[(0, 0, 0.5), (0, 3, 1.5), (1, 1, 2.0), (2, 0, 1.0), (2, 2, 0.25)],
        );
        let prop = PropagationMatrix::new(adj.clone());
        let mut p = Params::new();
        let x = p.push("x", test_matrix(4, 2, 1.0));

        // forward equivalence with dense matmul
        let mut g = Graph::new(&p);
        let xv = g.param(x);
        let y = g.spmm(&prop, xv);
        let dense = adj.to_dense().matmul(p.get(x));
        assert!(g.value(y).max_abs_diff(&dense) < 1e-6);
        drop(g);

        let prop2 = prop.clone();
        assert_grads_match(
            &mut p,
            &move |g| {
                let xv = g.param(ParamId(0));
                let y = g.spmm(&prop2, xv);
                let s = g.sigmoid(y);
                g.mean_all(s)
            },
            1e-2,
        );
    }

    #[test]
    fn bce_matches_manual_formula() {
        let mut p = Params::new();
        let w = p.push("w", test_matrix(5, 1, 2.0));
        let targets = [1.0, 0.0, 0.3, 1.0, 0.0];
        let mut g = Graph::new(&p);
        let logits = g.param(w);
        let loss = g.bce_with_logits(logits, &targets);
        let manual: f32 = p
            .get(w)
            .as_slice()
            .iter()
            .zip(&targets)
            .map(|(&x, &t)| {
                let s = 1.0 / (1.0 + (-x).exp());
                -(t * s.ln() + (1.0 - t) * (1.0 - s).ln())
            })
            .sum::<f32>()
            / 5.0;
        assert!((g.scalar(loss) - manual).abs() < 1e-5);
        drop(g);

        assert_grads_match(
            &mut p,
            &move |g| {
                let logits = g.param(ParamId(0));
                g.bce_with_logits(logits, &targets)
            },
            1e-2,
        );
    }

    #[test]
    fn frob_sq_grad() {
        let mut p = Params::new();
        p.push("w", test_matrix(3, 3, 1.0));
        assert_grads_match(
            &mut p,
            &|g| {
                let w = g.param(ParamId(0));
                let n = g.frob_sq(w);
                g.scale(n, 0.5)
            },
            2e-2,
        );
    }

    #[test]
    fn shared_param_accumulates() {
        // the same embedding table used twice must sum both contributions
        let mut p = Params::new();
        p.push("emb", test_matrix(4, 2, 1.0));
        assert_grads_match(
            &mut p,
            &|g| {
                let e1 = g.param(ParamId(0));
                let e2 = g.param(ParamId(0));
                let ga = g.gather(e1, &[0, 1]);
                let gb = g.gather(e2, &[1, 2]);
                let d = g.row_dot(ga, gb);
                let s = g.sigmoid(d);
                g.mean_all(s)
            },
            1e-2,
        );
    }

    #[test]
    fn disconnected_param_gets_no_grad() {
        let mut p = Params::new();
        let used = p.push("used", test_matrix(2, 2, 1.0));
        let unused = p.push("unused", test_matrix(2, 2, 1.0));
        let mut g = Graph::new(&p);
        let u = g.param(used);
        let l = g.sum_all(u);
        let grads = g.backward(l);
        assert!(grads.get(used).is_some());
        assert!(grads.get(unused).is_none());
    }

    #[test]
    fn mlp_composite_grad() {
        // two-layer MLP with biases: the NeuMF shape in miniature
        let mut p = Params::new();
        p.push("w1", test_matrix(4, 3, 0.9));
        p.push("b1", test_matrix(1, 3, 0.2));
        p.push("w2", test_matrix(3, 1, 1.1));
        p.push("b2", test_matrix(1, 1, 0.1));
        let x = test_matrix(5, 4, 1.0);
        let targets = [1.0, 0.0, 1.0, 0.0, 1.0];
        assert_grads_match(
            &mut p,
            &move |g| {
                let xv = g.leaf(x.clone());
                let w1 = g.param(ParamId(0));
                let b1 = g.param(ParamId(1));
                let w2 = g.param(ParamId(2));
                let b2 = g.param(ParamId(3));
                let h = g.matmul(xv, w1);
                let h = g.add_row(h, b1);
                let h = g.leaky_relu(h, 0.2);
                let o = g.matmul(h, w2);
                let o = g.add_row(o, b2);
                g.bce_with_logits(o, &targets)
            },
            2e-2,
        );
    }

    #[test]
    #[should_panic(expected = "loss must be a 1×1 scalar")]
    fn backward_rejects_non_scalar() {
        let p = Params::new();
        let mut g = Graph::new(&p);
        let x = g.leaf(Matrix::zeros(2, 2));
        let _ = g.backward(x);
    }

    #[test]
    fn leaf_absorbs_no_gradient() {
        let mut p = Params::new();
        let w = p.push("w", test_matrix(2, 2, 1.0));
        let mut g = Graph::new(&p);
        let x = g.leaf(test_matrix(2, 2, 1.0));
        let wv = g.param(w);
        let y = g.mul(x, wv);
        let l = g.sum_all(y);
        let grads = g.backward(l); // must not panic on the leaf
        assert_eq!(grads.num_touched(), 1);
    }

    /// The NeuMF shape in miniature: MLP over a leaf plus a gathered
    /// embedding interaction, exercising most op kinds in one tape.
    fn composite_loss(g: &mut Graph, x: &Matrix, targets: &[f32]) -> Var {
        let xv = g.leaf_ref(x);
        let w1 = g.param(ParamId(0));
        let b1 = g.param(ParamId(1));
        let emb = g.param(ParamId(2));
        let h = g.matmul(xv, w1);
        let h = g.add_row(h, b1);
        let h = g.leaky_relu(h, 0.2);
        let rows = g.gather(emb, &[0, 2, 2, 5, 1]);
        let d = g.row_dot(h, rows);
        let fit = g.bce_with_logits(d, targets);
        let reg = g.frob_sq(emb);
        let reg = g.scale(reg, 1e-3);
        g.add(fit, reg)
    }

    #[test]
    fn arena_reuse_is_bit_identical_across_batches() {
        let mut p = Params::new();
        p.push("w1", test_matrix(4, 3, 0.9));
        p.push("b1", test_matrix(1, 3, 0.2));
        p.push("emb", test_matrix(6, 3, 1.0));
        let x = test_matrix(5, 4, 1.0);
        let targets = [1.0, 0.0, 1.0, 0.0, 1.0];

        // reference: a fresh single-use graph
        let (ref_grads, ref_loss) = {
            let mut g = Graph::new(&p);
            let l = composite_loss(&mut g, &x, &targets);
            (g.backward(l), g.scalar(l))
        };

        // reused arena with grad-buffer recycling: every round must match
        // the fresh graph bit for bit
        let mut arena = GraphArena::new();
        for round in 0..3 {
            let grads = {
                let mut g = Graph::with_arena(&p, &mut arena);
                let l = composite_loss(&mut g, &x, &targets);
                let loss = g.scalar(l);
                assert_eq!(loss.to_bits(), ref_loss.to_bits(), "loss differs in round {round}");
                g.backward(l)
            };
            for (id, _, _) in p.iter() {
                assert_eq!(
                    grads.dense(id, &p).as_slice(),
                    ref_grads.dense(id, &p).as_slice(),
                    "grad for param {} differs in round {round}",
                    id.index()
                );
            }
            arena.recycle(grads);
        }
    }

    #[test]
    fn ngcf_style_arena_reuse_is_bit_identical() {
        // the NGCF layer shape: sparse propagation, element-wise affinity,
        // dropout (with a reseeded mask each round), tanh, column concat
        let adj = Csr::from_triplets(
            4,
            4,
            &[(0, 1, 0.5), (1, 0, 0.5), (1, 2, 0.7), (2, 1, 0.7), (3, 3, 1.0)],
        );
        let prop = PropagationMatrix::new(adj);
        let mut p = Params::new();
        let emb = p.push("emb", test_matrix(4, 3, 1.1));
        let w1 = p.push("w1", test_matrix(3, 3, 0.8));

        let layer = |g: &mut Graph| {
            let e = g.param(emb);
            let w = g.param(w1);
            let side = g.spmm(&prop, e);
            let aff = g.mul(side, e);
            let lin = g.matmul(aff, w);
            let mut rng = crate::test_rng(40);
            let drop = g.dropout(lin, 0.3, &mut rng);
            let act = g.tanh(drop);
            let both = g.concat_cols(act, e);
            g.frob_sq(both)
        };

        let (ref_grads, ref_loss) = {
            let mut g = Graph::new(&p);
            let l = layer(&mut g);
            (g.backward(l), g.scalar(l))
        };
        let mut arena = GraphArena::new();
        for round in 0..3 {
            let grads = {
                let mut g = Graph::with_arena(&p, &mut arena);
                let l = layer(&mut g);
                assert_eq!(g.scalar(l).to_bits(), ref_loss.to_bits(), "round {round}");
                g.backward(l)
            };
            for id in [emb, w1] {
                assert_eq!(
                    grads.dense(id, &p).as_slice(),
                    ref_grads.dense(id, &p).as_slice(),
                    "grad for param {} differs in round {round}",
                    id.index()
                );
            }
            arena.recycle(grads);
        }
    }

    #[test]
    fn arena_recycles_row_sparse_buffers_without_leaking_rows() {
        let mut p = Params::new();
        let emb = p.push("emb", test_matrix(6, 3, 1.0));
        let mut arena = GraphArena::new();
        // round 1 touches rows {4, 1}
        let grads = {
            let mut g = Graph::with_arena(&p, &mut arena);
            let e = g.param(emb);
            let rows = g.gather(e, &[4, 1, 4]);
            let l = g.sum_all(rows);
            g.backward(l)
        };
        assert!(matches!(grads.get(emb), Some(GradBuf::Rows(rs)) if rs.num_rows() == 2));
        arena.recycle(grads);
        // round 2 touches row {0} only — recycled buffer must not leak 4/1
        let grads = {
            let mut g = Graph::with_arena(&p, &mut arena);
            let e = g.param(emb);
            let rows = g.gather(e, &[0]);
            let l = g.sum_all(rows);
            g.backward(l)
        };
        match grads.get(emb) {
            Some(GradBuf::Rows(rs)) => {
                assert_eq!(rs.num_rows(), 1);
                let d = rs.to_dense(6);
                assert_eq!(d.row(0), &[1.0, 1.0, 1.0]);
                assert_eq!(d.row(4), &[0.0, 0.0, 0.0]);
            }
            other => panic!("expected recycled row-sparse grad, got {other:?}"),
        }
    }

    #[test]
    fn arena_handles_shrinking_graphs() {
        let mut p = Params::new();
        p.push("w", test_matrix(3, 3, 1.0));
        let mut arena = GraphArena::new();
        {
            let mut g = Graph::with_arena(&p, &mut arena);
            let w = g.param(ParamId(0));
            let s = g.sigmoid(w);
            let t = g.tanh(s);
            let l = g.frob_sq(t);
            let _ = g.backward(l);
        }
        // a smaller follow-up graph over the same arena must not see any
        // stale nodes, values, or gradient flags
        {
            let mut g = Graph::with_arena(&p, &mut arena);
            let w = g.param(ParamId(0));
            let l = g.sum_all(w);
            let grads = g.backward(l);
            let d = grads.dense(ParamId(0), &p);
            assert!(d.as_slice().iter().all(|&v| v == 1.0), "stale arena state leaked: {d:?}");
        }
    }
}

#[cfg(test)]
mod loss_op_tests {
    use super::*;
    use crate::test_rng;
    use rand::Rng as _;

    fn col(vals: &[f32]) -> Matrix {
        Matrix::col_vector(vals.to_vec())
    }

    #[test]
    fn bpr_loss_matches_manual_formula() {
        let mut p = Params::new();
        let pos = p.push("pos", col(&[1.2, -0.3, 0.5]));
        let neg = p.push("neg", col(&[0.2, 0.4, -1.0]));
        let mut g = Graph::new(&p);
        let pv = g.param(pos);
        let nv = g.param(neg);
        let l = g.bpr_loss(pv, nv);
        let manual: f32 = [1.2f32 - 0.2, -0.3 - 0.4, 0.5 + 1.0]
            .iter()
            .map(|&d| -(1.0 / (1.0 + (-d).exp())).ln())
            .sum::<f32>()
            / 3.0;
        assert!((g.scalar(l) - manual).abs() < 1e-5);
    }

    #[test]
    fn bpr_gradient_matches_finite_difference() {
        let mut p = Params::new();
        let pos = p.push("pos", col(&[0.4, -0.2]));
        let neg = p.push("neg", col(&[0.1, 0.6]));
        let grads = {
            let mut g = Graph::new(&p);
            let pv = g.param(pos);
            let nv = g.param(neg);
            let l = g.bpr_loss(pv, nv);
            g.backward(l)
        };
        let eps = 1e-2f32;
        for (id, sign) in [(pos, 1.0f32), (neg, 1.0)] {
            let analytic = grads.dense(id, &p);
            for r in 0..2 {
                let orig = p.get(id).get(r, 0);
                p.get_mut(id).set(r, 0, orig + eps);
                let hi = {
                    let mut g = Graph::new(&p);
                    let pv = g.param(pos);
                    let nv = g.param(neg);
                    let l = g.bpr_loss(pv, nv);
                    g.scalar(l)
                };
                p.get_mut(id).set(r, 0, orig - eps);
                let lo = {
                    let mut g = Graph::new(&p);
                    let pv = g.param(pos);
                    let nv = g.param(neg);
                    let l = g.bpr_loss(pv, nv);
                    g.scalar(l)
                };
                p.get_mut(id).set(r, 0, orig);
                let numeric = (hi - lo) / (2.0 * eps) * sign;
                assert!(
                    (analytic.get(r, 0) - numeric).abs() < 1e-3,
                    "bpr grad mismatch at ({r}): {} vs {numeric}",
                    analytic.get(r, 0)
                );
            }
        }
    }

    #[test]
    fn bpr_loss_decreases_when_positive_outranks_negative() {
        let p = Params::new();
        let mut g = Graph::new(&p);
        let close = {
            let pv = g.leaf(col(&[0.1]));
            let nv = g.leaf(col(&[0.0]));
            let l = g.bpr_loss(pv, nv);
            g.scalar(l)
        };
        let wide = {
            let pv = g.leaf(col(&[3.0]));
            let nv = g.leaf(col(&[-3.0]));
            let l = g.bpr_loss(pv, nv);
            g.scalar(l)
        };
        assert!(wide < close);
    }

    #[test]
    fn dropout_zeroes_and_rescales() {
        let p = Params::new();
        let mut g = Graph::new(&p);
        let x = g.leaf(Matrix::full(20, 10, 1.0));
        let mut rng = test_rng(5);
        let d = g.dropout(x, 0.4, &mut rng);
        let vals = g.value(d).as_slice();
        let scale = 1.0 / 0.6;
        let mut zeros = 0;
        for &v in vals {
            assert!(v == 0.0 || (v - scale).abs() < 1e-6, "unexpected value {v}");
            if v == 0.0 {
                zeros += 1;
            }
        }
        let rate = zeros as f32 / vals.len() as f32;
        assert!((rate - 0.4).abs() < 0.1, "empirical drop rate {rate}");
    }

    #[test]
    fn dropout_gradient_respects_mask() {
        let mut p = Params::new();
        let id = p.push("x", Matrix::full(4, 4, 0.5));
        let mut rng = test_rng(9);
        let (grads, mask_vals) = {
            let mut g = Graph::new(&p);
            let x = g.param(id);
            let d = g.dropout(x, 0.5, &mut rng);
            let mask_vals: Vec<f32> = g.value(d).as_slice().to_vec();
            let l = g.sum_all(d);
            (g.backward(l), mask_vals)
        };
        let dx = grads.dense(id, &p);
        for (g_val, &m) in dx.as_slice().iter().zip(&mask_vals) {
            if m == 0.0 {
                assert_eq!(*g_val, 0.0, "gradient leaked through dropped element");
            } else {
                assert!((g_val - 2.0).abs() < 1e-6, "kept gradient should be 1/(1-p)");
            }
        }
    }

    #[test]
    fn dropout_rate_zero_is_identity() {
        let p = Params::new();
        let mut g = Graph::new(&p);
        let x = g.leaf(Matrix::full(2, 2, 3.0));
        let mut rng = test_rng(1);
        let d = g.dropout(x, 0.0, &mut rng);
        assert_eq!(d, x, "rate 0 must be a no-op returning the same var");
    }

    #[test]
    fn dropout_mask_is_frozen_for_backward() {
        // the same mask must apply in forward and backward even if the RNG
        // advances in between
        let mut p = Params::new();
        let id = p.push("x", Matrix::full(1, 8, 1.0));
        let mut rng = test_rng(2);
        let mut g = Graph::new(&p);
        let x = g.param(id);
        let d = g.dropout(x, 0.5, &mut rng);
        let forward: Vec<f32> = g.value(d).as_slice().to_vec();
        let _ = rng.gen::<u64>(); // perturb the RNG
        let l = g.sum_all(d);
        let grads = g.backward(l);
        let dx = grads.dense(id, &p);
        for (f, gr) in forward.iter().zip(dx.as_slice()) {
            assert_eq!((*f == 0.0), (*gr == 0.0), "mask changed between passes");
        }
    }
}
