//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is built fresh for every training batch ("define-by-run"):
//! operations execute eagerly, recording just enough structure for
//! [`Graph::backward`] to replay the chain rule in reverse insertion order.
//! Parameters live *outside* the graph in a [`Params`] store that the graph
//! borrows; their gradients are returned in a [`Grads`] aligned with the
//! store, with embedding-style lookups producing row-sparse buffers.

use crate::grad::{GradBuf, Grads, RowSparse};
use crate::matrix::Matrix;
use crate::params::{ParamId, Params};
use crate::sparse::PropagationMatrix;
// `Rc` (not `Arc`) is deliberate: a `Graph` is a single-batch tape that is
// created, differentiated, and dropped on one thread — it never crosses a
// scheduler boundary (models are `Send + Sync`; their *tapes* are not and
// need not be). Shared state that does cross threads (the propagation
// matrices) lives behind `Arc` in `crate::sparse`.
use std::rc::Rc;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Clone, Copy, Debug)]
enum UnaryOp {
    Sigmoid,
    Relu,
    LeakyRelu(f32),
    Tanh,
    Neg,
}

#[derive(Clone, Copy, Debug)]
enum BinOp {
    Add,
    Sub,
    Mul,
}

enum Source {
    /// Constant input; receives no gradient.
    Leaf,
    /// Trainable parameter; gradient goes to the [`Grads`] store.
    Param(ParamId),
    Unary {
        p: Var,
        op: UnaryOp,
    },
    Binary {
        a: Var,
        b: Var,
        op: BinOp,
    },
    MatMul {
        a: Var,
        b: Var,
    },
    /// `prop.forward() × b`; backward is `prop.backward() × dY`.
    Spmm {
        prop: PropagationMatrix,
        b: Var,
    },
    Gather {
        src: Var,
        idx: Rc<[u32]>,
    },
    ConcatCols {
        a: Var,
        b: Var,
    },
    /// Row-wise dot product of two n×d matrices → n×1.
    RowDot {
        a: Var,
        b: Var,
    },
    SumAll {
        p: Var,
    },
    MeanAll {
        p: Var,
    },
    /// n×d matrix plus a 1×d row vector broadcast over rows.
    AddRow {
        m: Var,
        row: Var,
    },
    Scale {
        p: Var,
        c: f32,
    },
    /// Mean binary cross-entropy over an n×1 logit column.
    BceWithLogits {
        logits: Var,
        targets: Rc<[f32]>,
    },
    /// Mean BPR (pairwise) loss over two n×1 logit columns.
    BprLoss {
        pos: Var,
        neg: Var,
    },
    /// Squared Frobenius norm → 1×1 (for L2 regularization).
    FrobSq {
        p: Var,
    },
    /// Inverted dropout: forward multiplies by a frozen 0/(1−rate)⁻¹ mask.
    Dropout {
        p: Var,
        mask: Rc<[f32]>,
    },
}

enum NodeValue {
    Owned(Matrix),
    /// Value lives in the borrowed parameter store.
    Param(ParamId),
}

struct Node {
    value: NodeValue,
    src: Source,
}

/// A single-use autodiff tape over a borrowed parameter store.
pub struct Graph<'p> {
    params: &'p Params,
    nodes: Vec<Node>,
}

impl<'p> Graph<'p> {
    pub fn new(params: &'p Params) -> Self {
        Self { params, nodes: Vec::with_capacity(32) }
    }

    fn push(&mut self, value: Matrix, src: Source) -> Var {
        self.nodes.push(Node { value: NodeValue::Owned(value), src });
        Var(self.nodes.len() - 1)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        match &self.nodes[v.0].value {
            NodeValue::Owned(m) => m,
            NodeValue::Param(id) => self.params.get(*id),
        }
    }

    /// Shape of the forward value of `v`.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.value(v).shape()
    }

    /// The scalar held by a 1×1 node (e.g. a loss).
    pub fn scalar(&self, v: Var) -> f32 {
        self.value(v).scalar()
    }

    /// Inserts a constant (no gradient flows into it).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Source::Leaf)
    }

    /// Inserts a reference to parameter `id` (no copy is made).
    pub fn param(&mut self, id: ParamId) -> Var {
        assert!(id.index() < self.params.len(), "unknown ParamId");
        self.nodes.push(Node { value: NodeValue::Param(id), src: Source::Param(id) });
        Var(self.nodes.len() - 1)
    }

    /// Dense matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Source::MatMul { a, b })
    }

    /// Sparse propagation `prop × b` (NGCF/LightGCN message passing).
    pub fn spmm(&mut self, prop: &PropagationMatrix, b: Var) -> Var {
        let v = prop.forward().matmul(self.value(b));
        self.push(v, Source::Spmm { prop: prop.clone(), b })
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip_map(self.value(b), |x, y| x + y);
        self.push(v, Source::Binary { a, b, op: BinOp::Add })
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip_map(self.value(b), |x, y| x - y);
        self.push(v, Source::Binary { a, b, op: BinOp::Sub })
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip_map(self.value(b), |x, y| x * y);
        self.push(v, Source::Binary { a, b, op: BinOp::Mul })
    }

    /// Multiplication by a compile-time constant.
    pub fn scale(&mut self, p: Var, c: f32) -> Var {
        let v = self.value(p).map(|x| c * x);
        self.push(v, Source::Scale { p, c })
    }

    pub fn sigmoid(&mut self, p: Var) -> Var {
        let v = self.value(p).map(sigmoid);
        self.push(v, Source::Unary { p, op: UnaryOp::Sigmoid })
    }

    pub fn relu(&mut self, p: Var) -> Var {
        let v = self.value(p).map(|x| x.max(0.0));
        self.push(v, Source::Unary { p, op: UnaryOp::Relu })
    }

    /// Leaky ReLU with negative slope `alpha` (NGCF uses 0.2).
    pub fn leaky_relu(&mut self, p: Var, alpha: f32) -> Var {
        let v = self.value(p).map(|x| if x > 0.0 { x } else { alpha * x });
        self.push(v, Source::Unary { p, op: UnaryOp::LeakyRelu(alpha) })
    }

    pub fn tanh(&mut self, p: Var) -> Var {
        let v = self.value(p).map(f32::tanh);
        self.push(v, Source::Unary { p, op: UnaryOp::Tanh })
    }

    pub fn neg(&mut self, p: Var) -> Var {
        let v = self.value(p).map(|x| -x);
        self.push(v, Source::Unary { p, op: UnaryOp::Neg })
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (ar, ac) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!(ar, br, "concat_cols: row mismatch {ar} vs {br}");
        let mut out = Matrix::zeros(ar, ac + bc);
        for r in 0..ar {
            out.row_mut(r)[..ac].copy_from_slice(self.value(a).row(r));
            out.row_mut(r)[ac..].copy_from_slice(self.value(b).row(r));
        }
        self.push(out, Source::ConcatCols { a, b })
    }

    /// Gathers rows `idx` of `src` (embedding lookup). Gradients to a
    /// parameter source are accumulated row-sparsely.
    pub fn gather(&mut self, src: Var, idx: &[u32]) -> Var {
        let v = self.value(src).gather_rows(idx);
        self.push(v, Source::Gather { src, idx: idx.into() })
    }

    /// Row-wise dot product of two equally-shaped matrices → n×1 column.
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        let (ar, ac) = self.shape(a);
        assert_eq!((ar, ac), self.shape(b), "row_dot shape mismatch");
        let mut out = Matrix::zeros(ar, 1);
        for r in 0..ar {
            let dot: f32 =
                self.value(a).row(r).iter().zip(self.value(b).row(r)).map(|(&x, &y)| x * y).sum();
            out.set(r, 0, dot);
        }
        self.push(out, Source::RowDot { a, b })
    }

    /// Sum of all elements → 1×1.
    pub fn sum_all(&mut self, p: Var) -> Var {
        let v = Matrix::full(1, 1, self.value(p).sum());
        self.push(v, Source::SumAll { p })
    }

    /// Mean of all elements → 1×1.
    pub fn mean_all(&mut self, p: Var) -> Var {
        let n = self.value(p).len() as f32;
        let v = Matrix::full(1, 1, self.value(p).sum() / n);
        self.push(v, Source::MeanAll { p })
    }

    /// Squared Frobenius norm → 1×1.
    pub fn frob_sq(&mut self, p: Var) -> Var {
        let v = Matrix::full(1, 1, self.value(p).frob_sq());
        self.push(v, Source::FrobSq { p })
    }

    /// Broadcast-adds a 1×d row vector over the rows of an n×d matrix.
    pub fn add_row(&mut self, m: Var, row: Var) -> Var {
        let (_, mc) = self.shape(m);
        let (rr, rc) = self.shape(row);
        assert_eq!((rr, rc), (1, mc), "add_row: bias must be 1x{mc}, got {rr}x{rc}");
        let bias = self.value(row).as_slice().to_vec();
        let mut out = self.value(m).clone();
        for r in 0..out.rows() {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&bias) {
                *o += b;
            }
        }
        self.push(out, Source::AddRow { m, row })
    }

    /// Numerically stable mean binary cross-entropy over an n×1 logit
    /// column with (possibly soft) targets in `[0, 1]` → 1×1.
    ///
    /// `loss = mean_i [ max(xᵢ,0) − xᵢ·tᵢ + ln(1 + e^{−|xᵢ|}) ]`
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        let (n, c) = self.shape(logits);
        assert_eq!(c, 1, "bce_with_logits expects an n×1 logit column");
        assert_eq!(n, targets.len(), "bce_with_logits: {n} logits vs {} targets", targets.len());
        let x = self.value(logits).as_slice();
        let mut total = 0.0f64;
        for (&xi, &ti) in x.iter().zip(targets) {
            debug_assert!((0.0..=1.0).contains(&ti), "target {ti} outside [0,1]");
            total += (xi.max(0.0) - xi * ti + (-xi.abs()).exp().ln_1p()) as f64;
        }
        let v = Matrix::full(1, 1, (total / n as f64) as f32);
        self.push(v, Source::BceWithLogits { logits, targets: targets.into() })
    }

    /// Mean Bayesian Personalized Ranking loss `−mean ln σ(xᵖ − xⁿ)` over
    /// paired n×1 logit columns (positive item vs sampled negative).
    pub fn bpr_loss(&mut self, pos: Var, neg: Var) -> Var {
        let (n, c) = self.shape(pos);
        assert_eq!(c, 1, "bpr_loss expects n×1 logit columns");
        assert_eq!((n, c), self.shape(neg), "bpr_loss: pos/neg shape mismatch");
        let p = self.value(pos).as_slice();
        let q = self.value(neg).as_slice();
        let mut total = 0.0f64;
        for (&xp, &xn) in p.iter().zip(q) {
            let d = xp - xn;
            // −ln σ(d) = softplus(−d), computed stably
            total += ((-d).max(0.0) + (-(-d).abs()).exp().ln_1p()) as f64;
        }
        let v = Matrix::full(1, 1, (total / n as f64) as f32);
        self.push(v, Source::BprLoss { pos, neg })
    }

    /// Inverted dropout with the given drop `rate`: each element is zeroed
    /// with probability `rate` and survivors are scaled by `1/(1−rate)`,
    /// so expectations match the identity at inference time (where callers
    /// simply skip this op).
    pub fn dropout(&mut self, p: Var, rate: f32, rng: &mut impl rand::Rng) -> Var {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1), got {rate}");
        if rate == 0.0 {
            return p;
        }
        let keep = 1.0 - rate;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..self.value(p).len())
            .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let v = {
            let x = self.value(p);
            let mut out = x.clone();
            for (o, &m) in out.as_mut_slice().iter_mut().zip(&mask) {
                *o *= m;
            }
            out
        };
        self.push(v, Source::Dropout { p, mask: mask.into() })
    }

    /// Runs the chain rule backwards from the 1×1 node `loss`, returning
    /// gradients for every parameter the loss depends on.
    ///
    /// # Panics
    /// If `loss` is not 1×1.
    pub fn backward(&self, loss: Var) -> Grads {
        assert_eq!(self.shape(loss), (1, 1), "backward: loss must be a 1×1 scalar");
        let mut node_grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        let mut grads = Grads::new_for(self.params);
        node_grads[loss.0] = Some(Matrix::full(1, 1, 1.0));

        for i in (0..=loss.0).rev() {
            let Some(g) = node_grads[i].take() else { continue };
            match &self.nodes[i].src {
                Source::Leaf => {}
                Source::Param(id) => {
                    grads
                        .slot_mut(*id)
                        .get_or_insert_with(|| {
                            GradBuf::Dense(Matrix::zeros_like(self.params.get(*id)))
                        })
                        .add_dense(&g);
                }
                Source::Unary { p, op } => {
                    let dg = match op {
                        UnaryOp::Sigmoid => {
                            // y(1-y) in terms of the stored output
                            let y = self.value(Var(i));
                            y.zip_map(&g, |y, g| y * (1.0 - y) * g)
                        }
                        UnaryOp::Relu => {
                            self.value(*p).zip_map(&g, |x, g| if x > 0.0 { g } else { 0.0 })
                        }
                        UnaryOp::LeakyRelu(a) => {
                            let a = *a;
                            self.value(*p).zip_map(&g, move |x, g| if x > 0.0 { g } else { a * g })
                        }
                        UnaryOp::Tanh => {
                            let y = self.value(Var(i));
                            y.zip_map(&g, |y, g| (1.0 - y * y) * g)
                        }
                        UnaryOp::Neg => g.map(|x| -x),
                    };
                    self.accumulate(&mut node_grads, &mut grads, *p, dg);
                }
                Source::Binary { a, b, op } => match op {
                    BinOp::Add => {
                        self.accumulate(&mut node_grads, &mut grads, *a, g.clone());
                        self.accumulate(&mut node_grads, &mut grads, *b, g);
                    }
                    BinOp::Sub => {
                        self.accumulate(&mut node_grads, &mut grads, *a, g.clone());
                        self.accumulate(&mut node_grads, &mut grads, *b, g.map(|x| -x));
                    }
                    BinOp::Mul => {
                        let da = self.value(*b).zip_map(&g, |b, g| b * g);
                        let db = self.value(*a).zip_map(&g, |a, g| a * g);
                        self.accumulate(&mut node_grads, &mut grads, *a, da);
                        self.accumulate(&mut node_grads, &mut grads, *b, db);
                    }
                },
                Source::MatMul { a, b } => {
                    let da = g.matmul(&self.value(*b).transpose());
                    let db = self.value(*a).transpose().matmul(&g);
                    self.accumulate(&mut node_grads, &mut grads, *a, da);
                    self.accumulate(&mut node_grads, &mut grads, *b, db);
                }
                Source::Spmm { prop, b } => {
                    let db = prop.backward().matmul(&g);
                    self.accumulate(&mut node_grads, &mut grads, *b, db);
                }
                Source::Gather { src, idx } => {
                    // Row-sparse fast path straight into a parameter table.
                    if let Source::Param(id) = &self.nodes[src.0].src {
                        let cols = self.params.get(*id).cols();
                        grads
                            .slot_mut(*id)
                            .get_or_insert_with(|| GradBuf::Rows(RowSparse::new(cols)))
                            .add_rows(idx, &g);
                    } else {
                        let mut dsrc = Matrix::zeros_like(self.value(*src));
                        dsrc.scatter_add_rows(idx, &g);
                        self.accumulate(&mut node_grads, &mut grads, *src, dsrc);
                    }
                }
                Source::ConcatCols { a, b } => {
                    let ac = self.value(*a).cols();
                    let (gr, gc) = g.shape();
                    let mut da = Matrix::zeros(gr, ac);
                    let mut db = Matrix::zeros(gr, gc - ac);
                    for r in 0..gr {
                        da.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                        db.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
                    }
                    self.accumulate(&mut node_grads, &mut grads, *a, da);
                    self.accumulate(&mut node_grads, &mut grads, *b, db);
                }
                Source::RowDot { a, b } => {
                    let av = self.value(*a);
                    let bv = self.value(*b);
                    let mut da = Matrix::zeros_like(av);
                    let mut db = Matrix::zeros_like(bv);
                    for r in 0..av.rows() {
                        let gr = g.get(r, 0);
                        for (c, (&x, &y)) in av.row(r).iter().zip(bv.row(r)).enumerate() {
                            da.row_mut(r)[c] = gr * y;
                            db.row_mut(r)[c] = gr * x;
                        }
                    }
                    self.accumulate(&mut node_grads, &mut grads, *a, da);
                    self.accumulate(&mut node_grads, &mut grads, *b, db);
                }
                Source::SumAll { p } => {
                    let s = g.scalar();
                    let dp = Matrix::full(self.value(*p).rows(), self.value(*p).cols(), s);
                    self.accumulate(&mut node_grads, &mut grads, *p, dp);
                }
                Source::MeanAll { p } => {
                    let n = self.value(*p).len() as f32;
                    let s = g.scalar() / n;
                    let dp = Matrix::full(self.value(*p).rows(), self.value(*p).cols(), s);
                    self.accumulate(&mut node_grads, &mut grads, *p, dp);
                }
                Source::FrobSq { p } => {
                    let s = g.scalar();
                    let dp = self.value(*p).map(|x| 2.0 * s * x);
                    self.accumulate(&mut node_grads, &mut grads, *p, dp);
                }
                Source::AddRow { m, row } => {
                    let drow = g.col_sums();
                    self.accumulate(&mut node_grads, &mut grads, *m, g);
                    self.accumulate(&mut node_grads, &mut grads, *row, drow);
                }
                Source::Scale { p, c } => {
                    let c = *c;
                    self.accumulate(&mut node_grads, &mut grads, *p, g.map(|x| c * x));
                }
                Source::BceWithLogits { logits, targets } => {
                    let s = g.scalar();
                    let n = targets.len() as f32;
                    let x = self.value(*logits);
                    let mut dl = Matrix::zeros(targets.len(), 1);
                    for (r, &t) in targets.iter().enumerate() {
                        dl.set(r, 0, s * (sigmoid(x.get(r, 0)) - t) / n);
                    }
                    self.accumulate(&mut node_grads, &mut grads, *logits, dl);
                }
                Source::BprLoss { pos, neg } => {
                    let s = g.scalar();
                    let p = self.value(*pos);
                    let q = self.value(*neg);
                    let n = p.rows() as f32;
                    let mut dp = Matrix::zeros(p.rows(), 1);
                    let mut dq = Matrix::zeros(p.rows(), 1);
                    for r in 0..p.rows() {
                        // d/dxp [−ln σ(xp−xn)] = σ(xn−xp)
                        let coeff = s * sigmoid(q.get(r, 0) - p.get(r, 0)) / n;
                        dp.set(r, 0, -coeff);
                        dq.set(r, 0, coeff);
                    }
                    self.accumulate(&mut node_grads, &mut grads, *pos, dp);
                    self.accumulate(&mut node_grads, &mut grads, *neg, dq);
                }
                Source::Dropout { p, mask } => {
                    let mut dp = g;
                    for (d, &m) in dp.as_mut_slice().iter_mut().zip(mask.iter()) {
                        *d *= m;
                    }
                    self.accumulate(&mut node_grads, &mut grads, *p, dp);
                }
            }
        }
        grads
    }

    fn accumulate(
        &self,
        node_grads: &mut [Option<Matrix>],
        grads: &mut Grads,
        target: Var,
        g: Matrix,
    ) {
        match &self.nodes[target.0].src {
            Source::Leaf => {} // constants absorb nothing
            Source::Param(id) => {
                grads
                    .slot_mut(*id)
                    .get_or_insert_with(|| GradBuf::Dense(Matrix::zeros_like(self.params.get(*id))))
                    .add_dense(&g);
            }
            _ => match &mut node_grads[target.0] {
                Some(acc) => acc.add_assign(&g),
                slot @ None => *slot = Some(g),
            },
        }
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Matrix {
    /// Zero matrix with the same shape as `other`.
    pub fn zeros_like(other: &Matrix) -> Matrix {
        Matrix::zeros(other.rows(), other.cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Csr;

    /// Central finite differences of `loss(params)` w.r.t. parameter `id`.
    fn numeric_grad(params: &mut Params, id: ParamId, loss: &dyn Fn(&Params) -> f32) -> Matrix {
        let eps = 1e-2f32;
        let (rows, cols) = params.get(id).shape();
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let orig = params.get(id).get(i, j);
                params.get_mut(id).set(i, j, orig + eps);
                let hi = loss(params);
                params.get_mut(id).set(i, j, orig - eps);
                let lo = loss(params);
                params.get_mut(id).set(i, j, orig);
                out.set(i, j, (hi - lo) / (2.0 * eps));
            }
        }
        out
    }

    /// Asserts analytic gradients match finite differences for every param.
    fn assert_grads_match(params: &mut Params, build: &dyn Fn(&mut Graph) -> Var, tol: f32) {
        let grads = {
            let mut g = Graph::new(params);
            let l = build(&mut g);
            assert_eq!(g.shape(l), (1, 1), "test losses must be scalar");
            g.backward(l)
        };
        let ids: Vec<ParamId> = params.iter().map(|(id, _, _)| id).collect();
        for id in ids {
            let analytic = grads.dense(id, params);
            let numeric = numeric_grad(params, id, &|p| {
                let mut g = Graph::new(p);
                let l = build(&mut g);
                g.scalar(l)
            });
            let diff = analytic.max_abs_diff(&numeric);
            assert!(
                diff < tol,
                "gradient mismatch for param {}: max abs diff {diff}\nanalytic {:?}\nnumeric {:?}",
                id.index(),
                analytic.as_slice(),
                numeric.as_slice()
            );
        }
    }

    /// Deterministic "random-ish" values away from ReLU kinks.
    fn test_matrix(rows: usize, cols: usize, scale: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let v = ((r * 31 + c * 17 + 7) % 13) as f32 / 13.0 - 0.5;
            scale * (v + 0.08 * v.signum().max(0.0) + 0.12)
        })
    }

    #[test]
    fn matmul_grad() {
        let mut p = Params::new();
        p.push("a", test_matrix(2, 3, 1.0));
        p.push("b", test_matrix(3, 2, 1.0));
        assert_grads_match(
            &mut p,
            &|g| {
                let ids: Vec<ParamId> = (0..2).map(ParamId).collect();
                let a = g.param(ids[0]);
                let b = g.param(ids[1]);
                let c = g.matmul(a, b);
                g.sum_all(c)
            },
            1e-2,
        );
    }

    #[test]
    fn elementwise_grads() {
        let mut p = Params::new();
        p.push("a", test_matrix(3, 2, 0.8));
        p.push("b", test_matrix(3, 2, 0.6));
        assert_grads_match(
            &mut p,
            &|g| {
                let a = g.param(ParamId(0));
                let b = g.param(ParamId(1));
                let s = g.add(a, b);
                let d = g.sub(s, b);
                let m = g.mul(d, b);
                let sc = g.scale(m, 1.7);
                let n = g.neg(sc);
                g.mean_all(n)
            },
            1e-2,
        );
    }

    #[test]
    fn activation_grads() {
        let mut p = Params::new();
        p.push("x", test_matrix(4, 3, 1.5));
        assert_grads_match(
            &mut p,
            &|g| {
                let x = g.param(ParamId(0));
                let a = g.sigmoid(x);
                let b = g.tanh(a);
                let c = g.leaky_relu(b, 0.2);
                let d = g.relu(c);
                g.sum_all(d)
            },
            2e-2,
        );
    }

    #[test]
    fn concat_and_addrow_grads() {
        let mut p = Params::new();
        p.push("a", test_matrix(3, 2, 1.0));
        p.push("b", test_matrix(3, 2, 0.5));
        p.push("bias", test_matrix(1, 4, 0.3));
        assert_grads_match(
            &mut p,
            &|g| {
                let a = g.param(ParamId(0));
                let b = g.param(ParamId(1));
                let cat = g.concat_cols(a, b);
                let bias = g.param(ParamId(2));
                let biased = g.add_row(cat, bias);
                let act = g.tanh(biased);
                g.mean_all(act)
            },
            1e-2,
        );
    }

    #[test]
    fn row_dot_grad() {
        let mut p = Params::new();
        p.push("a", test_matrix(4, 3, 1.0));
        p.push("b", test_matrix(4, 3, 0.7));
        assert_grads_match(
            &mut p,
            &|g| {
                let a = g.param(ParamId(0));
                let b = g.param(ParamId(1));
                let d = g.row_dot(a, b);
                g.sum_all(d)
            },
            1e-2,
        );
    }

    #[test]
    fn gather_param_grad_is_row_sparse_and_correct() {
        let mut p = Params::new();
        let emb = p.push("emb", test_matrix(6, 3, 1.0));
        let idx: Vec<u32> = vec![4, 1, 4, 0];
        // analytic
        let grads = {
            let mut g = Graph::new(&p);
            let e = g.param(emb);
            let rows = g.gather(e, &idx);
            let l = g.sum_all(rows);
            g.backward(l)
        };
        match grads.get(emb) {
            Some(GradBuf::Rows(rs)) => {
                assert_eq!(rs.num_rows(), 3, "three distinct rows touched");
            }
            other => panic!("expected row-sparse grad, got {other:?}"),
        }
        let idx2 = idx.clone();
        assert_grads_match(
            &mut p,
            &move |g| {
                let e = g.param(ParamId(0));
                let rows = g.gather(e, &idx2);
                g.sum_all(rows)
            },
            1e-2,
        );
    }

    #[test]
    fn gather_from_intermediate_grad() {
        let mut p = Params::new();
        p.push("a", test_matrix(4, 2, 1.0));
        p.push("b", test_matrix(2, 2, 1.0));
        assert_grads_match(
            &mut p,
            &|g| {
                let a = g.param(ParamId(0));
                let b = g.param(ParamId(1));
                let prod = g.matmul(a, b); // intermediate, 4x2
                let rows = g.gather(prod, &[3, 3, 0]);
                g.sum_all(rows)
            },
            1e-2,
        );
    }

    #[test]
    fn spmm_matches_dense_and_grad() {
        let adj = Csr::from_triplets(
            3,
            4,
            &[(0, 0, 0.5), (0, 3, 1.5), (1, 1, 2.0), (2, 0, 1.0), (2, 2, 0.25)],
        );
        let prop = PropagationMatrix::new(adj.clone());
        let mut p = Params::new();
        let x = p.push("x", test_matrix(4, 2, 1.0));

        // forward equivalence with dense matmul
        let mut g = Graph::new(&p);
        let xv = g.param(x);
        let y = g.spmm(&prop, xv);
        let dense = adj.to_dense().matmul(p.get(x));
        assert!(g.value(y).max_abs_diff(&dense) < 1e-6);
        drop(g);

        let prop2 = prop.clone();
        assert_grads_match(
            &mut p,
            &move |g| {
                let xv = g.param(ParamId(0));
                let y = g.spmm(&prop2, xv);
                let s = g.sigmoid(y);
                g.mean_all(s)
            },
            1e-2,
        );
    }

    #[test]
    fn bce_matches_manual_formula() {
        let mut p = Params::new();
        let w = p.push("w", test_matrix(5, 1, 2.0));
        let targets = [1.0, 0.0, 0.3, 1.0, 0.0];
        let mut g = Graph::new(&p);
        let logits = g.param(w);
        let loss = g.bce_with_logits(logits, &targets);
        let manual: f32 = p
            .get(w)
            .as_slice()
            .iter()
            .zip(&targets)
            .map(|(&x, &t)| {
                let s = 1.0 / (1.0 + (-x).exp());
                -(t * s.ln() + (1.0 - t) * (1.0 - s).ln())
            })
            .sum::<f32>()
            / 5.0;
        assert!((g.scalar(loss) - manual).abs() < 1e-5);
        drop(g);

        assert_grads_match(
            &mut p,
            &move |g| {
                let logits = g.param(ParamId(0));
                g.bce_with_logits(logits, &targets)
            },
            1e-2,
        );
    }

    #[test]
    fn frob_sq_grad() {
        let mut p = Params::new();
        p.push("w", test_matrix(3, 3, 1.0));
        assert_grads_match(
            &mut p,
            &|g| {
                let w = g.param(ParamId(0));
                let n = g.frob_sq(w);
                g.scale(n, 0.5)
            },
            2e-2,
        );
    }

    #[test]
    fn shared_param_accumulates() {
        // the same embedding table used twice must sum both contributions
        let mut p = Params::new();
        p.push("emb", test_matrix(4, 2, 1.0));
        assert_grads_match(
            &mut p,
            &|g| {
                let e1 = g.param(ParamId(0));
                let e2 = g.param(ParamId(0));
                let ga = g.gather(e1, &[0, 1]);
                let gb = g.gather(e2, &[1, 2]);
                let d = g.row_dot(ga, gb);
                let s = g.sigmoid(d);
                g.mean_all(s)
            },
            1e-2,
        );
    }

    #[test]
    fn disconnected_param_gets_no_grad() {
        let mut p = Params::new();
        let used = p.push("used", test_matrix(2, 2, 1.0));
        let unused = p.push("unused", test_matrix(2, 2, 1.0));
        let mut g = Graph::new(&p);
        let u = g.param(used);
        let l = g.sum_all(u);
        let grads = g.backward(l);
        assert!(grads.get(used).is_some());
        assert!(grads.get(unused).is_none());
    }

    #[test]
    fn mlp_composite_grad() {
        // two-layer MLP with biases: the NeuMF shape in miniature
        let mut p = Params::new();
        p.push("w1", test_matrix(4, 3, 0.9));
        p.push("b1", test_matrix(1, 3, 0.2));
        p.push("w2", test_matrix(3, 1, 1.1));
        p.push("b2", test_matrix(1, 1, 0.1));
        let x = test_matrix(5, 4, 1.0);
        let targets = [1.0, 0.0, 1.0, 0.0, 1.0];
        assert_grads_match(
            &mut p,
            &move |g| {
                let xv = g.leaf(x.clone());
                let w1 = g.param(ParamId(0));
                let b1 = g.param(ParamId(1));
                let w2 = g.param(ParamId(2));
                let b2 = g.param(ParamId(3));
                let h = g.matmul(xv, w1);
                let h = g.add_row(h, b1);
                let h = g.leaky_relu(h, 0.2);
                let o = g.matmul(h, w2);
                let o = g.add_row(o, b2);
                g.bce_with_logits(o, &targets)
            },
            2e-2,
        );
    }

    #[test]
    #[should_panic(expected = "loss must be a 1×1 scalar")]
    fn backward_rejects_non_scalar() {
        let p = Params::new();
        let mut g = Graph::new(&p);
        let x = g.leaf(Matrix::zeros(2, 2));
        let _ = g.backward(x);
    }

    #[test]
    fn leaf_absorbs_no_gradient() {
        let mut p = Params::new();
        let w = p.push("w", test_matrix(2, 2, 1.0));
        let mut g = Graph::new(&p);
        let x = g.leaf(test_matrix(2, 2, 1.0));
        let wv = g.param(w);
        let y = g.mul(x, wv);
        let l = g.sum_all(y);
        let grads = g.backward(l); // must not panic on the leaf
        assert_eq!(grads.num_touched(), 1);
    }
}

#[cfg(test)]
mod loss_op_tests {
    use super::*;
    use crate::test_rng;
    use rand::Rng as _;

    fn col(vals: &[f32]) -> Matrix {
        Matrix::col_vector(vals.to_vec())
    }

    #[test]
    fn bpr_loss_matches_manual_formula() {
        let mut p = Params::new();
        let pos = p.push("pos", col(&[1.2, -0.3, 0.5]));
        let neg = p.push("neg", col(&[0.2, 0.4, -1.0]));
        let mut g = Graph::new(&p);
        let pv = g.param(pos);
        let nv = g.param(neg);
        let l = g.bpr_loss(pv, nv);
        let manual: f32 = [1.2f32 - 0.2, -0.3 - 0.4, 0.5 + 1.0]
            .iter()
            .map(|&d| -(1.0 / (1.0 + (-d).exp())).ln())
            .sum::<f32>()
            / 3.0;
        assert!((g.scalar(l) - manual).abs() < 1e-5);
    }

    #[test]
    fn bpr_gradient_matches_finite_difference() {
        let mut p = Params::new();
        let pos = p.push("pos", col(&[0.4, -0.2]));
        let neg = p.push("neg", col(&[0.1, 0.6]));
        let grads = {
            let mut g = Graph::new(&p);
            let pv = g.param(pos);
            let nv = g.param(neg);
            let l = g.bpr_loss(pv, nv);
            g.backward(l)
        };
        let eps = 1e-2f32;
        for (id, sign) in [(pos, 1.0f32), (neg, 1.0)] {
            let analytic = grads.dense(id, &p);
            for r in 0..2 {
                let orig = p.get(id).get(r, 0);
                p.get_mut(id).set(r, 0, orig + eps);
                let hi = {
                    let mut g = Graph::new(&p);
                    let pv = g.param(pos);
                    let nv = g.param(neg);
                    let l = g.bpr_loss(pv, nv);
                    g.scalar(l)
                };
                p.get_mut(id).set(r, 0, orig - eps);
                let lo = {
                    let mut g = Graph::new(&p);
                    let pv = g.param(pos);
                    let nv = g.param(neg);
                    let l = g.bpr_loss(pv, nv);
                    g.scalar(l)
                };
                p.get_mut(id).set(r, 0, orig);
                let numeric = (hi - lo) / (2.0 * eps) * sign;
                assert!(
                    (analytic.get(r, 0) - numeric).abs() < 1e-3,
                    "bpr grad mismatch at ({r}): {} vs {numeric}",
                    analytic.get(r, 0)
                );
            }
        }
    }

    #[test]
    fn bpr_loss_decreases_when_positive_outranks_negative() {
        let p = Params::new();
        let mut g = Graph::new(&p);
        let close = {
            let pv = g.leaf(col(&[0.1]));
            let nv = g.leaf(col(&[0.0]));
            let l = g.bpr_loss(pv, nv);
            g.scalar(l)
        };
        let wide = {
            let pv = g.leaf(col(&[3.0]));
            let nv = g.leaf(col(&[-3.0]));
            let l = g.bpr_loss(pv, nv);
            g.scalar(l)
        };
        assert!(wide < close);
    }

    #[test]
    fn dropout_zeroes_and_rescales() {
        let p = Params::new();
        let mut g = Graph::new(&p);
        let x = g.leaf(Matrix::full(20, 10, 1.0));
        let mut rng = test_rng(5);
        let d = g.dropout(x, 0.4, &mut rng);
        let vals = g.value(d).as_slice();
        let scale = 1.0 / 0.6;
        let mut zeros = 0;
        for &v in vals {
            assert!(v == 0.0 || (v - scale).abs() < 1e-6, "unexpected value {v}");
            if v == 0.0 {
                zeros += 1;
            }
        }
        let rate = zeros as f32 / vals.len() as f32;
        assert!((rate - 0.4).abs() < 0.1, "empirical drop rate {rate}");
    }

    #[test]
    fn dropout_gradient_respects_mask() {
        let mut p = Params::new();
        let id = p.push("x", Matrix::full(4, 4, 0.5));
        let mut rng = test_rng(9);
        let (grads, mask_vals) = {
            let mut g = Graph::new(&p);
            let x = g.param(id);
            let d = g.dropout(x, 0.5, &mut rng);
            let mask_vals: Vec<f32> = g.value(d).as_slice().to_vec();
            let l = g.sum_all(d);
            (g.backward(l), mask_vals)
        };
        let dx = grads.dense(id, &p);
        for (g_val, &m) in dx.as_slice().iter().zip(&mask_vals) {
            if m == 0.0 {
                assert_eq!(*g_val, 0.0, "gradient leaked through dropped element");
            } else {
                assert!((g_val - 2.0).abs() < 1e-6, "kept gradient should be 1/(1-p)");
            }
        }
    }

    #[test]
    fn dropout_rate_zero_is_identity() {
        let p = Params::new();
        let mut g = Graph::new(&p);
        let x = g.leaf(Matrix::full(2, 2, 3.0));
        let mut rng = test_rng(1);
        let d = g.dropout(x, 0.0, &mut rng);
        assert_eq!(d, x, "rate 0 must be a no-op returning the same var");
    }

    #[test]
    fn dropout_mask_is_frozen_for_backward() {
        // the same mask must apply in forward and backward even if the RNG
        // advances in between
        let mut p = Params::new();
        let id = p.push("x", Matrix::full(1, 8, 1.0));
        let mut rng = test_rng(2);
        let mut g = Graph::new(&p);
        let x = g.param(id);
        let d = g.dropout(x, 0.5, &mut rng);
        let forward: Vec<f32> = g.value(d).as_slice().to_vec();
        let _ = rng.gen::<u64>(); // perturb the RNG
        let l = g.sum_all(d);
        let grads = g.backward(l);
        let dx = grads.dense(id, &p);
        for (f, gr) in forward.iter().zip(dx.as_slice()) {
            assert_eq!((*f == 0.0), (*gr == 0.0), "mask changed between passes");
        }
    }
}
