//! Row-sparse embedding tables with deterministic lazy materialization.
//!
//! PTF-FedRec clients never transmit their models — and they also never
//! *touch* more than a sliver of the item space: positives, per-round
//! sampled negatives, and server-dispersed items. [`ItemScope`] makes that
//! contract explicit at model-construction time, and [`RowTable`] backs a
//! scoped model's item embeddings with a dense arena of only the rows in
//! scope plus a sorted id→row index.
//!
//! Two properties make scoped and full models interchangeable:
//!
//! * **Seed-derived per-row initialization.** Every row's initial value is
//!   a pure function of `(table seed, global item id)` via [`derive_seed`]
//!   — the same SplitMix-style derivation discipline as the federation
//!   scheduler's RNG streams. A `Rows`-scoped table and a `Full` table
//!   built from the same seed hold bit-identical values on every shared
//!   row, so scoped and full runs stay bit-comparable.
//! * **Lazy, order-independent materialization.** Touching an out-of-scope
//!   row (a dispersed item the client has never seen) materializes it on
//!   first touch with its derived init; because the init depends only on
//!   the id, *when* and *in which order* rows materialize cannot change
//!   their contents. Rows are kept sorted by global id so iteration (and
//!   graph-propagation summation order) matches a full table's.
//!
//! Materialization into reserved capacity performs **zero heap
//! allocations** (arena/index growth is amortized with a bounded ~25%
//! headroom so peak heap stays close to the touched-row footprint).

use crate::matrix::Matrix;

/// Mixes `(master, a, b)` into one well-distributed 64-bit seed.
///
/// SplitMix64-style: each input word is folded in with an odd constant,
/// then the combined state goes through two xor-shift-multiply
/// finalization rounds. Consecutive inputs land far apart, so derived
/// `StdRng`s are statistically independent in practice. This is the
/// single seed-derivation primitive of the workspace: the federation
/// scheduler derives per-`(seed, round, stream)` RNGs from it, and scoped
/// tables derive per-`(table, item id)` row initializers.
pub fn derive_seed(master: u64, a: u64, b: u64) -> u64 {
    let mut z = master
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which item-embedding rows a model can ever touch.
///
/// The model-construction contract of the scoped API
/// (`ptf_models::build_model_scoped`): `Full(n)` allocates the classic
/// dense `n × dim` table; `Rows` allocates only the listed rows (a
/// client's positives, typically) and lets everything else materialize
/// lazily on first touch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ItemScope {
    /// Every item of an `n`-item catalogue.
    Full(usize),
    /// Only `ids` (sorted, deduplicated, all `< num_items`) out of a
    /// `num_items`-item catalogue.
    Rows {
        /// Total catalogue size (ids remain global; scoping changes
        /// storage, not the id space).
        num_items: usize,
        /// Initially materialized global item ids, sorted ascending.
        ids: Vec<u32>,
    },
}

impl ItemScope {
    /// A `Rows` scope from any id list: sorts, deduplicates, validates.
    pub fn rows(num_items: usize, mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        if let Some(&last) = ids.last() {
            assert!(
                (last as usize) < num_items,
                "scope id {last} out of range ({num_items} items)"
            );
        }
        Self::Rows { num_items, ids }
    }

    /// Total catalogue size (the model's global `num_items`).
    pub fn num_items(&self) -> usize {
        match self {
            Self::Full(n) => *n,
            Self::Rows { num_items, .. } => *num_items,
        }
    }

    /// Rows materialized at construction time.
    pub fn initial_rows(&self) -> usize {
        match self {
            Self::Full(n) => *n,
            Self::Rows { ids, .. } => ids.len(),
        }
    }

    pub fn is_full(&self) -> bool {
        matches!(self, Self::Full(_))
    }
}

/// Sorted id→row index of a scoped table.
///
/// `Full` scopes use the dense identity mapping (no index storage, O(1)
/// lookups); `Rows` scopes keep the materialized global ids sorted so
/// lookup is a binary search and row order is monotone in global id —
/// which keeps float summation order (graph propagation, delta
/// aggregation) identical between scoped and full tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScopeIndex {
    num_items: usize,
    /// `None` = dense identity over `0..num_items`.
    ids: Option<Vec<u32>>,
}

impl ScopeIndex {
    pub fn from_scope(scope: &ItemScope) -> Self {
        match scope {
            ItemScope::Full(n) => Self { num_items: *n, ids: None },
            ItemScope::Rows { num_items, ids } => {
                debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "scope ids must be sorted");
                Self { num_items: *num_items, ids: Some(ids.clone()) }
            }
        }
    }

    pub fn dense(num_items: usize) -> Self {
        Self { num_items, ids: None }
    }

    pub fn is_dense(&self) -> bool {
        self.ids.is_none()
    }

    /// Total catalogue size (global id space).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Materialized row count.
    pub fn len(&self) -> usize {
        self.ids.as_ref().map_or(self.num_items, Vec::len)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialized ids in row order (`None` for the dense identity).
    pub fn ids(&self) -> Option<&[u32]> {
        self.ids.as_deref()
    }

    /// Row index of `id`, if materialized.
    pub fn lookup(&self, id: u32) -> Option<usize> {
        debug_assert!((id as usize) < self.num_items, "item {id} out of range");
        match &self.ids {
            None => Some(id as usize),
            Some(ids) => ids.binary_search(&id).ok(),
        }
    }

    /// Row index of `id`, materializing it if absent. Returns
    /// `(row, inserted)`; on insertion every row at `row` or later shifts
    /// down by one (callers must shift any parallel storage identically).
    pub fn insert(&mut self, id: u32) -> (usize, bool) {
        assert!(
            (id as usize) < self.num_items,
            "item {id} out of range ({} items)",
            self.num_items
        );
        match &mut self.ids {
            None => (id as usize, false),
            Some(ids) => match ids.binary_search(&id) {
                Ok(p) => (p, false),
                Err(p) => {
                    ids.insert(p, id);
                    (p, true)
                }
            },
        }
    }

    /// Global id of row `r`.
    pub fn id_of(&self, r: usize) -> u32 {
        match &self.ids {
            None => r as u32,
            Some(ids) => ids[r],
        }
    }

    /// Removes `id` from a sparse index, returning the row position it
    /// occupied; every later row shifts up by one (callers must shift any
    /// parallel storage identically — the exact inverse of
    /// [`ScopeIndex::insert`]). Dense identity scopes cannot drop ids and
    /// return `None`, as does an id that was never materialized.
    pub fn remove(&mut self, id: u32) -> Option<usize> {
        match &mut self.ids {
            None => None,
            Some(ids) => match ids.binary_search(&id) {
                Ok(p) => {
                    ids.remove(p);
                    Some(p)
                }
                Err(_) => None,
            },
        }
    }

    /// Replaces the materialized id set (checkpoint restore). The new ids
    /// must be sorted, unique, in range, and — since parallel storage is
    /// not reshaped — of the same length.
    pub fn restore_ids(&mut self, new_ids: Vec<u32>) -> Result<(), String> {
        if self.is_dense() {
            return Err("cannot restore a sparse id set into a dense scope".to_string());
        }
        if new_ids.len() != self.len() {
            return Err(format!("scope size mismatch: {} vs {}", new_ids.len(), self.len()));
        }
        if !new_ids.windows(2).all(|w| w[0] < w[1]) {
            return Err("scope ids must be sorted and unique".to_string());
        }
        if let Some(&last) = new_ids.last() {
            if last as usize >= self.num_items {
                return Err(format!("scope id {last} out of range ({} items)", self.num_items));
            }
        }
        self.ids = Some(new_ids);
        Ok(())
    }
}

/// How a [`RowTable`] fills a freshly materialized row.
#[derive(Clone, Copy, Debug, PartialEq)]
enum RowInit {
    /// All-zero rows (delta/accumulator tables).
    Zeros,
    /// First `init_cols` entries i.i.d. `N(0, std²)` from the row's
    /// derived seed; trailing columns (e.g. a bias column) start at zero.
    DerivedNormal { seed: u64, std: f32, init_cols: usize },
}

/// A row-sparse embedding table: a dense arena of the materialized rows
/// (sorted by global item id) plus a [`ScopeIndex`].
///
/// See the module docs for the determinism contract. The arena grows with
/// bounded headroom (~25%) rather than doubling, so a Gowalla-scale
/// client fleet's peak heap stays close to the sum of touched rows.
#[derive(Clone, Debug, PartialEq)]
pub struct RowTable {
    index: ScopeIndex,
    cols: usize,
    init: RowInit,
    /// Row-major arena, `index.len() × cols`.
    data: Vec<f32>,
}

std::thread_local! {
    /// Reusable buffer for computing a cold (unmaterialized) row's init
    /// values without touching the table; see [`RowTable::with_row`].
    static COLD_ROW: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

impl RowTable {
    /// Builds a table over `scope` whose materialized rows carry the
    /// seed-derived normal init (`init_cols ≤ cols` normal entries, the
    /// rest zero — MF uses the trailing column as the item bias).
    pub fn from_scope(
        scope: &ItemScope,
        cols: usize,
        init_cols: usize,
        std: f32,
        seed: u64,
    ) -> Self {
        assert!(init_cols <= cols, "init_cols {init_cols} > cols {cols}");
        let index = ScopeIndex::from_scope(scope);
        let init = RowInit::DerivedNormal { seed, std, init_cols };
        let mut data = vec![0.0f32; index.len() * cols];
        for r in 0..index.len() {
            let id = index.id_of(r);
            fill_row(init, id, &mut data[r * cols..r * cols + cols]);
        }
        Self { index, cols, init, data }
    }

    /// A sparse zero-initialized table with no materialized rows — the
    /// accumulator shape (per-client item deltas, gradient staging).
    pub fn sparse_zeroed(num_items: usize, cols: usize) -> Self {
        Self {
            index: ScopeIndex::from_scope(&ItemScope::Rows { num_items, ids: Vec::new() }),
            cols,
            init: RowInit::Zeros,
            data: Vec::new(),
        }
    }

    /// A dense table filled by `fill(row, &mut row_slice)` — the bridge
    /// from legacy sequential-RNG construction (rows keep whatever values
    /// the caller writes; cold rows cannot occur on a dense table).
    pub fn dense_with(
        num_items: usize,
        cols: usize,
        mut fill: impl FnMut(usize, &mut [f32]),
    ) -> Self {
        let mut data = vec![0.0f32; num_items * cols];
        for r in 0..num_items {
            fill(r, &mut data[r * cols..(r + 1) * cols]);
        }
        Self { index: ScopeIndex::dense(num_items), cols, init: RowInit::Zeros, data }
    }

    pub fn num_items(&self) -> usize {
        self.index.num_items()
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Materialized row count.
    pub fn rows(&self) -> usize {
        self.index.len()
    }

    /// Materialized scalar count (the table's parameter count).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn is_dense(&self) -> bool {
        self.index.is_dense()
    }

    /// Materialized ids in row order (`None` when dense).
    pub fn ids(&self) -> Option<&[u32]> {
        self.index.ids()
    }

    pub fn index(&self) -> &ScopeIndex {
        &self.index
    }

    pub fn lookup(&self, id: u32) -> Option<usize> {
        self.index.lookup(id)
    }

    /// Global id of materialized row `r`.
    pub fn id_of(&self, r: usize) -> u32 {
        self.index.id_of(r)
    }

    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates `(global id, row)` in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[f32])> {
        (0..self.rows()).map(|r| (self.index.id_of(r), self.row(r)))
    }

    /// Pre-reserves capacity for `additional` more materialized rows, so
    /// the next `additional` first-touches allocate nothing.
    pub fn reserve_rows(&mut self, additional: usize) {
        let want = (self.rows() + additional).min(self.num_items());
        let extra_rows = want.saturating_sub(self.rows());
        let need = self.data.len() + extra_rows * self.cols;
        if need > self.data.capacity() {
            self.data.reserve_exact(need - self.data.len());
        }
        if let Some(ids) = &mut self.index.ids {
            if want > ids.capacity() {
                let extra = want - ids.len();
                ids.reserve_exact(extra);
            }
        }
    }

    /// Grows capacity ahead of one insertion with bounded (~25%) headroom
    /// instead of `Vec`'s doubling, so a fleet of scoped tables does not
    /// hold 2× its touched-row footprint at peak.
    fn reserve_for_insert(&mut self) {
        if self.data.len() + self.cols > self.data.capacity() {
            let headroom_rows = (self.rows() / 4).max(8);
            self.reserve_rows(headroom_rows.max(1));
        } else if let Some(ids) = &self.index.ids {
            if ids.len() == ids.capacity() {
                let headroom_rows = (self.rows() / 4).max(8);
                self.reserve_rows(headroom_rows.max(1));
            }
        }
    }

    /// Row index of `id`, materializing it with the table's init on first
    /// touch. Materialization into reserved capacity is allocation-free.
    pub fn ensure(&mut self, id: u32) -> usize {
        self.ensure_detailed(id).0
    }

    /// [`RowTable::ensure`] that also reports whether the row was
    /// freshly materialized.
    pub fn ensure_detailed(&mut self, id: u32) -> (usize, bool) {
        if let Some(r) = self.index.lookup(id) {
            return (r, false);
        }
        self.reserve_for_insert();
        let (p, inserted) = self.index.insert(id);
        debug_assert!(inserted);
        // append cols zeros, then rotate them into place at row p —
        // in-place (no temporary buffer, no allocation once reserved)
        let at = p * self.cols;
        let old_len = self.data.len();
        self.data.resize(old_len + self.cols, 0.0);
        self.data[at..].rotate_right(self.cols);
        fill_row(self.init, id, &mut self.data[at..at + self.cols]);
        (p, true)
    }

    /// Materializes every id of `sorted_ids` (ascending, unique) that is
    /// not yet present, in **one backward merge pass** — O(rows + new)
    /// total arena movement instead of the O(new × rows) shifting that
    /// per-id [`RowTable::ensure`] costs when a round touches many fresh
    /// rows at once. Returns the number of rows materialized; zero when
    /// everything was already present (and then the call is free).
    pub fn ensure_many(&mut self, sorted_ids: &[u32]) -> usize {
        debug_assert!(sorted_ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted unique");
        if let Some(&last) = sorted_ids.last() {
            assert!(
                (last as usize) < self.num_items(),
                "item {last} out of range ({} items)",
                self.num_items()
            );
        }
        if self.index.is_dense() {
            return 0;
        }
        let new_count = {
            let ids = self.index.ids.as_ref().expect("sparse index");
            let mut i = 0usize;
            let mut fresh = 0usize;
            for &id in sorted_ids {
                while i < ids.len() && ids[i] < id {
                    i += 1;
                }
                if i >= ids.len() || ids[i] != id {
                    fresh += 1;
                }
            }
            fresh
        };
        if new_count == 0 {
            return 0;
        }
        self.reserve_rows(new_count);
        let cols = self.cols;
        let init = self.init;
        let ids = self.index.ids.as_mut().expect("sparse index");
        let old_rows = ids.len();
        self.data.resize((old_rows + new_count) * cols, 0.0);
        ids.resize(old_rows + new_count, 0);
        // merge from the back: reads of old entries happen at indices < i,
        // writes at w ≥ i, so nothing unread is ever clobbered
        let mut w = old_rows + new_count;
        let mut i = old_rows;
        let mut j = sorted_ids.len();
        while i > 0 || j > 0 {
            if j > 0 && (i == 0 || sorted_ids[j - 1] > ids[i - 1]) {
                j -= 1;
                w -= 1;
                let id = sorted_ids[j];
                ids[w] = id;
                fill_row(init, id, &mut self.data[w * cols..(w + 1) * cols]);
            } else if j > 0 && i > 0 && sorted_ids[j - 1] == ids[i - 1] {
                j -= 1; // already materialized; the old row carries it
            } else {
                i -= 1;
                w -= 1;
                if w != i {
                    ids[w] = ids[i];
                    self.data.copy_within(i * cols..(i + 1) * cols, w * cols);
                }
            }
        }
        debug_assert_eq!(w, 0);
        debug_assert!(ids.windows(2).all(|p| p[0] < p[1]));
        new_count
    }

    /// Evicts every row whose global id is not in `keep_sorted`
    /// (ascending, unique), returning how many rows were dropped.
    ///
    /// Eviction is *semantically free* on seed-derived tables: a dropped
    /// row re-materializes bit-identically on next touch, because its init
    /// is a pure function of `(table seed, id)`. Sparse tables compact the
    /// arena in one forward merge pass (O(rows) movement); dense
    /// seed-derived tables reset the evicted rows in place to their
    /// derived init — the representation-independent meaning of "row
    /// state is back to init". Dense tables built from caller-supplied
    /// values ([`RowTable::dense_with`]) have no reproducible init to
    /// return to, so they refuse to evict and return 0.
    pub fn retain_ids(&mut self, keep_sorted: &[u32]) -> usize {
        debug_assert!(
            keep_sorted.windows(2).all(|w| w[0] < w[1]),
            "keep ids must be sorted unique"
        );
        let cols = self.cols;
        let init = self.init;
        match &mut self.index.ids {
            None => {
                if matches!(init, RowInit::Zeros) {
                    return 0;
                }
                // dense seed-derived table: reset non-kept rows in place,
                // walking the keep list in lockstep with the identity rows
                let mut k = 0usize;
                let mut reset = 0usize;
                for id in 0..self.index.num_items as u32 {
                    while k < keep_sorted.len() && keep_sorted[k] < id {
                        k += 1;
                    }
                    if k < keep_sorted.len() && keep_sorted[k] == id {
                        continue;
                    }
                    let at = id as usize * cols;
                    fill_row(init, id, &mut self.data[at..at + cols]);
                    reset += 1;
                }
                reset
            }
            Some(ids) => {
                let mut w = 0usize;
                for r in 0..ids.len() {
                    if keep_sorted.binary_search(&ids[r]).is_ok() {
                        if w != r {
                            ids[w] = ids[r];
                            self.data.copy_within(r * cols..(r + 1) * cols, w * cols);
                        }
                        w += 1;
                    }
                }
                let removed = ids.len() - w;
                ids.truncate(w);
                self.data.truncate(w * cols);
                removed
            }
        }
    }

    /// Converts a sparse table into the dense identity table,
    /// materializing every missing row with its derived init.
    /// Already-materialized rows keep their (possibly trained) values
    /// byte-for-byte, so densifying is representation-only: the result is
    /// bit-identical to a `Full`-scope table that received the same
    /// updates. Returns `false` (no-op) when already dense.
    pub fn densify(&mut self) -> bool {
        if self.index.is_dense() {
            return false;
        }
        let all: Vec<u32> = (0..self.num_items() as u32).collect();
        self.ensure_many(&all);
        self.index.ids = None;
        true
    }

    /// Like [`RowTable::ensure`], but a freshly materialized row is
    /// filled by `fill` instead of the table init (copy-on-first-touch —
    /// the FCF/MetaMF clients seed their local rows from the server's
    /// current values).
    pub fn ensure_with(&mut self, id: u32, fill: impl FnOnce(&mut [f32])) -> usize {
        let (r, inserted) = self.ensure_detailed(id);
        if inserted {
            let row = self.row_mut(r);
            row.iter_mut().for_each(|x| *x = 0.0);
            fill(row);
        }
        r
    }

    /// Writes the values row `id` *would* hold if materialized right now
    /// (its deterministic init) into `out`, without materializing it.
    pub fn cold_row_into(&self, id: u32, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.cols, 0.0);
        fill_row(self.init, id, out);
    }

    /// Runs `f` on row `id`: the materialized row if present, otherwise
    /// its init values computed into a thread-local scratch buffer (no
    /// table mutation, no steady-state allocation). `f` must not
    /// re-enter `with_row` on the same thread.
    pub fn with_row<R>(&self, id: u32, f: impl FnOnce(&[f32]) -> R) -> R {
        match self.index.lookup(id) {
            Some(r) => f(self.row(r)),
            None => COLD_ROW.with(|cell| {
                let mut buf = cell.borrow_mut();
                buf.clear();
                buf.resize(self.cols, 0.0);
                fill_row(self.init, id, &mut buf);
                f(&buf)
            }),
        }
    }

    /// The materialized rows as a dense `rows × cols` matrix (export).
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows(), self.cols, self.data.clone())
    }
}

fn fill_row(init: RowInit, id: u32, out: &mut [f32]) {
    match init {
        RowInit::Zeros => out.iter_mut().for_each(|x| *x = 0.0),
        RowInit::DerivedNormal { seed, std, init_cols } => {
            crate::init::derived_normal_row(seed, id, std, &mut out[..init_cols]);
            out[init_cols..].iter_mut().for_each(|x| *x = 0.0);
        }
    }
}

/// Wire form; shape and ordering invariants are re-validated on load.
/// The seed travels as a hex string: the vendored JSON layer routes bare
/// integers through `f64`, which silently rounds u64 seeds ≥ 2⁵³ — and a
/// rounded seed would re-derive *different* lazy rows after a restore.
#[derive(serde::Serialize, serde::Deserialize)]
struct RowTableWire {
    num_items: usize,
    cols: usize,
    /// `None` = dense identity mapping.
    ids: Option<Vec<u32>>,
    data: Vec<f32>,
    init_seed: String,
    init_std: f32,
    init_cols: usize,
}

impl serde::Serialize for RowTable {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let (init_seed, init_std, init_cols) = match self.init {
            RowInit::Zeros => (0, 0.0, 0),
            RowInit::DerivedNormal { seed, std, init_cols } => (seed, std, init_cols),
        };
        RowTableWire {
            num_items: self.num_items(),
            cols: self.cols,
            ids: self.index.ids().map(<[u32]>::to_vec),
            data: self.data.clone(),
            init_seed: format!("{init_seed:016x}"),
            init_std,
            init_cols,
        }
        .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for RowTable {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error;
        let w = RowTableWire::deserialize(deserializer)?;
        let rows = match &w.ids {
            None => w.num_items,
            Some(ids) => {
                if !ids.windows(2).all(|p| p[0] < p[1]) {
                    return Err(D::Error::custom("row table ids must be sorted and unique"));
                }
                if ids.last().is_some_and(|&l| l as usize >= w.num_items) {
                    return Err(D::Error::custom("row table id out of range"));
                }
                ids.len()
            }
        };
        if w.data.len() != rows * w.cols {
            return Err(D::Error::custom(format!(
                "row table buffer of {} elements cannot be {rows}x{}",
                w.data.len(),
                w.cols
            )));
        }
        if w.init_cols > w.cols {
            return Err(D::Error::custom("init_cols exceeds cols"));
        }
        let seed = u64::from_str_radix(&w.init_seed, 16)
            .map_err(|e| D::Error::custom(format!("bad init seed: {e}")))?;
        let init = if w.init_std == 0.0 && seed == 0 && w.init_cols == 0 {
            RowInit::Zeros
        } else {
            RowInit::DerivedNormal { seed, std: w.init_std, init_cols: w.init_cols }
        };
        Ok(Self {
            index: ScopeIndex { num_items: w.num_items, ids: w.ids },
            cols: w.cols,
            init,
            data: w.data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scoped(ids: &[u32]) -> RowTable {
        RowTable::from_scope(&ItemScope::rows(20, ids.to_vec()), 4, 3, 0.1, 77)
    }

    #[test]
    fn full_and_rows_share_row_values() {
        let full = RowTable::from_scope(&ItemScope::Full(20), 4, 3, 0.1, 77);
        let rows = scoped(&[2, 5, 19]);
        for &id in &[2u32, 5, 19] {
            assert_eq!(full.row(id as usize), rows.row(rows.lookup(id).unwrap()), "row {id}");
        }
        // trailing (bias) column starts at zero in both
        assert_eq!(full.row(5)[3], 0.0);
    }

    #[test]
    fn lazy_materialization_is_order_independent() {
        let mut a = scoped(&[3]);
        let mut b = scoped(&[3]);
        a.ensure(10);
        a.ensure(7);
        b.ensure(7);
        b.ensure(10);
        assert_eq!(a, b);
        assert_eq!(a.ids(), Some(&[3, 7, 10][..]));
        // and both match the full table on every shared row
        let full = RowTable::from_scope(&ItemScope::Full(20), 4, 3, 0.1, 77);
        for &id in &[3u32, 7, 10] {
            assert_eq!(a.row(a.lookup(id).unwrap()), full.row(id as usize));
        }
    }

    #[test]
    fn ensure_keeps_rows_sorted_and_shifts_arena() {
        let mut t = scoped(&[5, 10]);
        let before_5 = t.row(t.lookup(5).unwrap()).to_vec();
        let (r, inserted) = t.ensure_detailed(7);
        assert!(inserted);
        assert_eq!(r, 1);
        assert_eq!(t.ids(), Some(&[5, 7, 10][..]));
        assert_eq!(t.row(t.lookup(5).unwrap()), &before_5[..], "existing row moved bytes");
        let (r2, again) = t.ensure_detailed(7);
        assert_eq!((r2, again), (1, false));
    }

    #[test]
    fn ensure_many_matches_one_by_one() {
        let mut batch = scoped(&[4, 9]);
        let mut single = scoped(&[4, 9]);
        let wanted = [1u32, 4, 6, 9, 15, 19];
        assert_eq!(batch.ensure_many(&wanted), 4);
        for &id in &wanted {
            single.ensure(id);
        }
        assert_eq!(batch, single);
        // idempotent and free the second time
        assert_eq!(batch.ensure_many(&wanted), 0);
        assert_eq!(batch, single);
        // dense tables are a no-op
        let mut dense = RowTable::from_scope(&ItemScope::Full(20), 4, 3, 0.1, 77);
        assert_eq!(dense.ensure_many(&wanted), 0);
    }

    #[test]
    fn with_row_cold_equals_materialized() {
        let mut t = scoped(&[1]);
        let cold = t.with_row(9, <[f32]>::to_vec);
        let r = t.ensure(9);
        assert_eq!(t.row(r), &cold[..], "cold values must equal first-touch init");
    }

    #[test]
    fn materialization_into_reserved_capacity_allocates_nothing() {
        let mut t = scoped(&[0]);
        t.reserve_rows(16);
        let before = crate::alloc::thread_allocs();
        for id in 1..10 {
            t.ensure(id);
        }
        // the shim is only live in binaries that install it; in unit tests
        // both readings are 0 — the assertion is vacuous there but real in
        // tests/hot_path.rs, which runs the same path under the shim
        assert_eq!(crate::alloc::thread_allocs(), before, "reserved inserts must not allocate");
    }

    #[test]
    fn retain_ids_compacts_sparse_tables_and_rematerializes_identically() {
        let mut t = scoped(&[2, 5, 9, 13, 19]);
        let keep_5 = t.row(t.lookup(5).unwrap()).to_vec();
        let keep_13 = t.row(t.lookup(13).unwrap()).to_vec();
        assert_eq!(t.retain_ids(&[5, 13]), 3);
        assert_eq!(t.ids(), Some(&[5, 13][..]));
        assert_eq!(t.row(0), &keep_5[..], "kept row moved bytes");
        assert_eq!(t.row(1), &keep_13[..], "kept row moved bytes");
        assert_eq!(t.len(), 2 * t.cols());
        // an evicted row comes back bit-identical to a never-evicted twin
        let twin = scoped(&[9]);
        let r = t.ensure(9);
        assert_eq!(t.row(r), twin.row(0), "re-materialization must be reproducible");
        // keeping everything is a no-op
        assert_eq!(t.retain_ids(&[5, 9, 13]), 0);
    }

    #[test]
    fn retain_ids_resets_dense_seed_derived_rows_in_place() {
        let mut dense = RowTable::from_scope(&ItemScope::Full(20), 4, 3, 0.1, 77);
        let fresh = dense.clone();
        // perturb two rows, keep one of them
        dense.row_mut(6)[0] += 1.0;
        dense.row_mut(11)[0] += 1.0;
        let trained_11 = dense.row(11).to_vec();
        assert!(dense.retain_ids(&[11]) > 0);
        assert_eq!(dense.row(6), fresh.row(6), "evicted dense row must return to init");
        assert_eq!(dense.row(11), &trained_11[..], "kept dense row must be untouched");
        assert_eq!(dense.rows(), 20, "dense tables never drop rows, only reset them");
        // legacy value-filled dense tables have no derived init: refuse
        let mut legacy = RowTable::dense_with(3, 2, |r, row| row.fill(r as f32));
        assert_eq!(legacy.retain_ids(&[0]), 0);
        assert_eq!(legacy.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn densify_matches_full_table_bit_for_bit() {
        let mut sparse = scoped(&[2, 5]);
        let mut full = RowTable::from_scope(&ItemScope::Full(20), 4, 3, 0.1, 77);
        // train one shared row identically in both representations
        let r = sparse.lookup(5).unwrap();
        sparse.row_mut(r)[0] += 0.25;
        full.row_mut(5)[0] += 0.25;
        assert!(sparse.densify());
        assert!(sparse.is_dense());
        assert_eq!(sparse, full);
        // second call is a no-op
        assert!(!sparse.densify());
    }

    #[test]
    fn scope_index_remove_is_inverse_of_insert() {
        let mut s = ScopeIndex::from_scope(&ItemScope::rows(10, vec![2, 4, 7]));
        assert_eq!(s.remove(4), Some(1));
        assert_eq!(s.ids(), Some(&[2, 7][..]));
        assert_eq!(s.remove(4), None, "double-remove must be a no-op");
        assert_eq!(s.insert(4), (1, true));
        assert_eq!(s.ids(), Some(&[2, 4, 7][..]));
        let mut dense = ScopeIndex::dense(4);
        assert_eq!(dense.remove(2), None, "dense identity cannot drop ids");
    }

    #[test]
    fn zeroed_accumulator_and_ensure_with() {
        let mut t = RowTable::sparse_zeroed(10, 3);
        let r = t.ensure_with(4, |row| row.copy_from_slice(&[1.0, 2.0, 3.0]));
        assert_eq!(t.row(r), &[1.0, 2.0, 3.0]);
        // second touch keeps the existing values
        let r2 = t.ensure_with(4, |row| row.copy_from_slice(&[9.0, 9.0, 9.0]));
        assert_eq!((r, t.row(r2)), (r2, &[1.0, 2.0, 3.0][..]));
        let r3 = t.ensure(8);
        assert_eq!(t.row(r3), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn dense_with_wraps_legacy_buffers() {
        let t = RowTable::dense_with(3, 2, |r, row| {
            row[0] = r as f32;
            row[1] = -(r as f32);
        });
        assert!(t.is_dense());
        assert_eq!(t.lookup(2), Some(2));
        assert_eq!(t.row(1), &[1.0, -1.0]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn serde_roundtrip_sparse_and_dense() {
        let mut t = scoped(&[2, 8]);
        t.ensure(5);
        let json = serde_json::to_string(&t).unwrap();
        let back: RowTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        // a restored table still lazily materializes identically
        let mut a = back.clone();
        let mut b = t.clone();
        assert_eq!(a.ensure(11), b.ensure(11));
        assert_eq!(a, b);

        let d = RowTable::dense_with(3, 2, |r, row| row.fill(r as f32));
        let back: RowTable = serde_json::from_str(&serde_json::to_string(&d).unwrap()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn serde_rejects_corrupt_tables() {
        let bad = r#"{"num_items":5,"cols":2,"ids":[3,1],"data":[0,0,0,0],"init_seed":"1","init_std":0.1,"init_cols":2}"#;
        assert!(serde_json::from_str::<RowTable>(bad).is_err(), "unsorted ids accepted");
        let bad = r#"{"num_items":5,"cols":2,"ids":[1],"data":[0,0,0,0],"init_seed":"1","init_std":0.1,"init_cols":2}"#;
        assert!(serde_json::from_str::<RowTable>(bad).is_err(), "shape mismatch accepted");
    }

    #[test]
    fn scope_index_dense_and_sparse() {
        let mut dense = ScopeIndex::dense(4);
        assert_eq!(dense.lookup(3), Some(3));
        assert_eq!(dense.insert(2), (2, false));
        assert_eq!(dense.len(), 4);

        let mut s = ScopeIndex::from_scope(&ItemScope::rows(10, vec![4, 2]));
        assert_eq!(s.ids(), Some(&[2, 4][..]));
        assert_eq!(s.lookup(3), None);
        assert_eq!(s.insert(3), (1, true));
        assert_eq!(s.insert(3), (1, false));
        assert_eq!(s.id_of(2), 4);
    }

    #[test]
    fn scope_restore_validates() {
        let mut s = ScopeIndex::from_scope(&ItemScope::rows(10, vec![1, 2, 3]));
        assert!(s.restore_ids(vec![1, 2]).is_err(), "length mismatch accepted");
        assert!(s.restore_ids(vec![3, 2, 1]).is_err(), "unsorted accepted");
        assert!(s.restore_ids(vec![1, 2, 99]).is_err(), "out of range accepted");
        assert!(s.restore_ids(vec![5, 6, 7]).is_ok());
        assert_eq!(s.ids(), Some(&[5, 6, 7][..]));
    }

    #[test]
    fn derive_seed_depends_on_every_input() {
        let base = derive_seed(1, 2, 3);
        assert_ne!(base, derive_seed(2, 2, 3));
        assert_ne!(base, derive_seed(1, 3, 3));
        assert_ne!(base, derive_seed(1, 2, 4));
        assert_eq!(base, derive_seed(1, 2, 3));
    }

    #[test]
    fn item_scope_constructor_normalizes() {
        let s = ItemScope::rows(10, vec![7, 3, 3, 0]);
        assert_eq!(s, ItemScope::Rows { num_items: 10, ids: vec![0, 3, 7] });
        assert_eq!(s.num_items(), 10);
        assert_eq!(s.initial_rows(), 3);
        assert!(!s.is_full());
        assert!(ItemScope::Full(4).is_full());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn item_scope_rejects_out_of_range() {
        let _ = ItemScope::rows(5, vec![5]);
    }
}
