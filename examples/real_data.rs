//! Loading the original dataset files.
//!
//! All experiments default to synthetic equivalents, but if you have the
//! real MovieLens-100K `u.data` (or any `user,item` CSV) on disk, this
//! example trains PTF-FedRec on it:
//!
//! ```sh
//! cargo run --release --example real_data -- /path/to/u.data
//! ```
//!
//! Without an argument it demonstrates the parsers on embedded samples.

use ptf_fedrec::core::{Federation, PtfConfig};
use ptf_fedrec::data::loader::{parse_movielens_100k, parse_pairs_csv};
use ptf_fedrec::data::{DatasetStats, TrainTestSplit};
use ptf_fedrec::models::{ModelHyper, ModelKind};

fn main() {
    let dataset = match std::env::args().nth(1) {
        Some(path) => {
            let content = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            // u.data is tab-separated; fall back to CSV
            parse_movielens_100k("user-data", &content)
                .or_else(|_| parse_pairs_csv("user-data", &content))
                .expect("unrecognized dataset format")
        }
        None => {
            println!("no file given — parsing an embedded MovieLens-style sample\n");
            let sample = "\
1\t10\t4\t881250949
1\t20\t3\t881250950
1\t30\t5\t881250951
1\t40\t2\t881250952
1\t50\t4\t881250953
2\t10\t5\t881250954
2\t20\t4\t881250955
2\t60\t3\t881250956
2\t70\t4\t881250957
3\t30\t4\t881250958
3\t50\t2\t881250959
3\t60\t5\t881250960
3\t80\t4\t881250961
4\t10\t3\t881250962
4\t30\t4\t881250963
4\t80\t5\t881250964
4\t90\t4\t881250965
";
            parse_movielens_100k("sample", sample).expect("sample parses")
        }
    };

    println!("{}", DatasetStats::of(&dataset));

    let mut rng = ptf_fedrec::data::test_rng(3);
    let split = TrainTestSplit::split_80_20(&dataset, &mut rng);
    let mut cfg = PtfConfig::small();
    cfg.rounds = 5;
    cfg.alpha = cfg.alpha.min(dataset.num_items() / 2);
    let mut fed = Federation::builder(&split.train)
        .client_model(ModelKind::NeuMf)
        .server_model(ModelKind::LightGcn)
        .hyper(ModelHyper::small())
        .config(cfg)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    let trace = fed.run();
    println!(
        "trained {} rounds; final client loss {:.4}",
        trace.num_rounds(),
        trace.final_client_loss()
    );
    let report = fed.evaluate(&split.train, &split.test, 10);
    println!("{report}");
}
