//! Communication report: measure what each federated protocol actually
//! puts on the wire for the same training task (the Table IV experiment
//! as a runnable program), plus the scaling argument of §III-C2.
//!
//! All four protocols go through the *same* `FederatedProtocol` engine
//! loop — the measurement code never branches on the protocol.
//!
//! ```sh
//! cargo run --release --example communication_report
//! ```

use ptf_fedrec::baselines::{Fcf, FcfConfig, FedMf, FedMfConfig, MetaMf, MetaMfConfig};
use ptf_fedrec::comm::format_bytes;
use ptf_fedrec::core::{PtfConfig, PtfFedRec};
use ptf_fedrec::data::{DatasetPreset, Scale, TrainTestSplit};
use ptf_fedrec::federated::{Engine, FederatedProtocol};
use ptf_fedrec::models::{ModelHyper, ModelKind};

fn main() {
    let mut rng = ptf_fedrec::data::test_rng(31);
    let data = DatasetPreset::Gowalla.generate(Scale::Small, &mut rng);
    let split = TrainTestSplit::split_80_20(&data, &mut rng);
    println!(
        "task: {} clients, {} items, 3 measured rounds each\n",
        data.num_users(),
        data.num_items()
    );

    println!("{:<12} {:>16} {:>16} {:>14}", "protocol", "per client-round", "total", "messages");

    let mut ptf_cfg = PtfConfig::small();
    ptf_cfg.rounds = 3;
    let protocols: Vec<Box<dyn FederatedProtocol>> = vec![
        Box::new(Fcf::new(&split.train, FcfConfig::small())),
        Box::new(FedMf::new(&split.train, FedMfConfig::small())),
        Box::new(MetaMf::new(&split.train, MetaMfConfig::small())),
        Box::new(
            PtfFedRec::try_new(
                &split.train,
                ModelKind::NeuMf,
                ModelKind::Ngcf,
                &ModelHyper::small(),
                ptf_cfg,
            )
            .expect("example config is valid"),
        ),
    ];

    for protocol in protocols {
        let mut engine = Engine::new(protocol);
        for _ in 0..3 {
            engine.run_round();
        }
        let s = engine.ledger().summary();
        println!(
            "{:<12} {:>16} {:>16} {:>14}",
            engine.protocol().name(),
            format_bytes(s.avg_client_bytes_per_round),
            format_bytes(s.total_bytes as f64),
            s.messages
        );
    }

    println!("\nwhy it matters as models grow (per client-round, analytic):");
    println!("{:>12} {:>12} {:>12}", "items", "FCF", "PTF-FedRec");
    for items in [10_000usize, 100_000, 1_000_000] {
        let fcf_bytes = 2.0 * (items * 33 * 4) as f64;
        let ptf_bytes = ((0.55 * 46.0 * 3.5) as usize + 30) as f64 * 12.0;
        println!("{:>12} {:>12} {:>12}", items, format_bytes(fcf_bytes), format_bytes(ptf_bytes));
    }
}
