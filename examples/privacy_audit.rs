//! Privacy audit: play the honest-but-curious server and attack client
//! uploads under each defense (the Table V experiment, interactively).
//!
//! ```sh
//! cargo run --release --example privacy_audit
//! ```

use ptf_fedrec::core::{DefenseKind, Federation, PtfConfig};
use ptf_fedrec::data::{DatasetPreset, Scale, TrainTestSplit};
use ptf_fedrec::models::{ModelHyper, ModelKind};
use ptf_fedrec::privacy::TopGuessAttack;

fn main() {
    let mut rng = ptf_fedrec::data::test_rng(13);
    let data = DatasetPreset::MovieLens100K.generate(Scale::Small, &mut rng);
    let split = TrainTestSplit::split_80_20(&data, &mut rng);

    let defenses = [
        DefenseKind::NoDefense,
        DefenseKind::Ldp { epsilon: 2.0 },
        DefenseKind::Sampling,
        DefenseKind::SamplingSwapping,
    ];

    println!("{:<22} {:>10} {:>10} {:>12}", "defense", "attack F1", "NDCG@20", "avg upload");
    for defense in defenses {
        let mut cfg = PtfConfig::small();
        cfg.rounds = 6;
        cfg.defense = defense;
        let mut fed = Federation::builder(&split.train)
            .client_model(ModelKind::NeuMf)
            .server_model(ModelKind::Ngcf)
            .hyper(ModelHyper::small())
            .config(cfg)
            .build()
            .expect("example config is valid");
        fed.run();

        // the curious server's view: the final round of uploads
        let uploads = fed.protocol().last_uploads();
        let attack = TopGuessAttack::default();
        let f1 = attack.mean_f1(
            uploads.iter().map(|u| (u.predictions.as_slice(), u.audit_positives.as_slice())),
        );
        let ndcg = fed.evaluate(&split.train, &split.test, 20).metrics.ndcg;
        let avg_upload: f64 =
            uploads.iter().map(|u| u.len() as f64).sum::<f64>() / uploads.len().max(1) as f64;
        println!("{:<22} {:>10.4} {:>10.4} {:>9.1} items", defense.name(), f1, ndcg, avg_upload);
    }
    println!("\nlower F1 = better privacy; the paper's full defense trades a little");
    println!("NDCG for a large drop in attack accuracy (Table V).");
}
