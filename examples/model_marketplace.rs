//! Model marketplace: the platform upgrades its *hidden* server model
//! without touching a single client — the property parameter-transmission
//! FedRecs cannot offer (their model architecture is public by protocol).
//!
//! Runs the same federation with three different hidden models and shows
//! that (a) clients are byte-identical in what they send, (b) the platform
//! can pick the best architecture privately (the Table VIII experiment).
//!
//! ```sh
//! cargo run --release --example model_marketplace
//! ```

use ptf_fedrec::core::{Federation, PtfConfig};
use ptf_fedrec::data::{DatasetPreset, Scale, TrainTestSplit};
use ptf_fedrec::models::{ModelHyper, ModelKind};

fn main() {
    let mut rng = ptf_fedrec::data::test_rng(29);
    let data = DatasetPreset::Steam200K.generate(Scale::Small, &mut rng);
    let split = TrainTestSplit::split_80_20(&data, &mut rng);

    println!("platform evaluates three hidden architectures on the same fleet:\n");
    println!(
        "{:<12} {:>10} {:>10} {:>14} {:>14}",
        "server", "Recall@20", "NDCG@20", "params hidden", "client bytes"
    );

    let mut best: Option<(ModelKind, f64)> = None;
    for server_kind in ModelKind::ALL {
        let mut cfg = PtfConfig::small();
        cfg.rounds = 10;
        let mut fed = Federation::builder(&split.train)
            .client_model(ModelKind::NeuMf) // the public client model never changes
            .server_model(server_kind)
            .hyper(ModelHyper::small())
            .config(cfg)
            .build()
            .expect("example config is valid");
        fed.run();
        let report = fed.evaluate(&split.train, &split.test, 20);
        let bytes = fed.ledger().avg_client_bytes_per_round();
        println!(
            "{:<12} {:>10.4} {:>10.4} {:>14} {:>12.0} B",
            server_kind.name(),
            report.metrics.recall,
            report.metrics.ndcg,
            fed.protocol().server().model().num_params(),
            bytes
        );
        if best.is_none_or(|(_, n)| report.metrics.ndcg > n) {
            best = Some((server_kind, report.metrics.ndcg));
        }
    }

    if let Some((kind, ndcg)) = best {
        println!(
            "\nthe platform deploys {} (NDCG {ndcg:.4}) — clients never learn which \
             model ran, nor could a competitor clone it from traffic.",
            kind.name()
        );
    }
}
