//! Quickstart: train a hidden server model with PTF-FedRec through the
//! typed federation builder.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ptf_fedrec::core::{ConfigError, Federation, PtfConfig};
use ptf_fedrec::data::{DatasetPreset, Scale, TrainTestSplit};
use ptf_fedrec::models::{ModelHyper, ModelKind};

fn main() -> Result<(), ConfigError> {
    // 1. Data: a MovieLens-100K-shaped synthetic dataset, split 8:2.
    let mut rng = ptf_fedrec::data::test_rng(7);
    let data = DatasetPreset::MovieLens100K.generate(Scale::Small, &mut rng);
    let split = TrainTestSplit::split_80_20(&data, &mut rng);
    println!(
        "dataset: {} users × {} items, {} interactions",
        data.num_users(),
        data.num_items(),
        data.num_interactions()
    );

    // 2. The federation: every user is a client running the public NeuMF;
    //    the platform's NGCF stays hidden on the server. The builder
    //    validates the configuration instead of panicking, and wires the
    //    engine's communication ledger automatically.
    let mut cfg = PtfConfig::small();
    cfg.rounds = 8;
    let mut fed = Federation::builder(&split.train)
        .client_model(ModelKind::NeuMf) // public client model
        .server_model(ModelKind::Ngcf) // hidden server model — never transmitted
        .hyper(ModelHyper::small())
        .config(cfg)
        .build()?;

    // 3. Train: only prediction triples cross the wire.
    let trace = fed.run();
    for round in &trace.rounds {
        println!(
            "round {:>2}: client loss {:.4}, server loss {:.4}, {} participants, {} bytes",
            round.round, round.mean_client_loss, round.server_loss, round.participants, round.bytes
        );
    }

    // 4. Evaluate the hidden model and inspect the communication bill.
    let report = fed.evaluate(&split.train, &split.test, 20);
    let server_model = fed.protocol().server().model();
    println!("\nserver model ({}): {report}", server_model.name());
    let summary = fed.ledger().summary();
    println!(
        "communication: {} total over {} rounds, avg {} per client-round",
        ptf_fedrec::comm::format_bytes(summary.total_bytes as f64),
        summary.rounds,
        ptf_fedrec::comm::format_bytes(summary.avg_client_bytes_per_round),
    );
    println!(
        "a parameter-transmission protocol would move ≥ {} per client-round",
        ptf_fedrec::comm::format_bytes((server_model.num_params() * 4) as f64),
    );
    Ok(())
}
