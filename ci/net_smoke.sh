#!/usr/bin/env bash
# Localhost TCP smoke for the networked deployment mode: one `ptf serve`
# plus four `ptf client` processes, three rounds, ML-100K small preset
# (120 clients), with the last shard induced to straggle past the final
# round's deadline. Asserts the server completes with a valid JSON trace
# that records exactly that shard's drops, and that the on-time shards
# exit clean. Every process runs under a wall-clock timeout so a
# deadlock fails CI instead of hanging it.
set -euo pipefail

BIN=${PTF_BIN:-target/release/ptf}
OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

common=(--dataset ml100k --client mf --server mf --rounds 3)

timeout 300 "$BIN" serve "${common[@]}" --port 0 \
  --deadline-ms 10000 --gather-ms 60000 --json \
  >"$OUT/serve.json" 2>"$OUT/serve.err" &
SERVE_PID=$!

# `--port 0` binds an ephemeral port; the bound address is the first
# stderr line
ADDR=""
for _ in $(seq 1 300); do
  ADDR=$(sed -n 's/^listening on //p' "$OUT/serve.err" | head -n1)
  [ -n "$ADDR" ] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    cat "$OUT/serve.err" >&2
    echo "serve died before binding" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "serve never printed its address" >&2
  exit 1
fi
echo "serve bound on $ADDR"

CLIENT_PIDS=()
for ids in 0-29 30-59 60-89; do
  timeout 300 "$BIN" client "${common[@]}" --addr "$ADDR" --ids "$ids" --json \
    >"$OUT/client-$ids.json" 2>"$OUT/client-$ids.err" &
  CLIENT_PIDS+=($!)
done

# the straggler shard sleeps through round 2's 10s deadline; once the
# server is done it ends in a clean disconnect (exit 1, no panic) or is
# reaped below — either is fine, only the server's view is asserted
timeout 300 "$BIN" client "${common[@]}" --addr "$ADDR" --ids 90-119 \
  --straggle-round 2 --straggle-ms 120000 \
  >"$OUT/straggler.out" 2>"$OUT/straggler.err" &
STRAGGLER_PID=$!

if ! wait "$SERVE_PID"; then
  echo "serve failed:" >&2
  cat "$OUT/serve.err" >&2
  exit 1
fi

for pid in "${CLIENT_PIDS[@]}"; do
  if ! wait "$pid"; then
    echo "an on-time client failed:" >&2
    cat "$OUT"/client-*.err >&2
    exit 1
  fi
done
kill "$STRAGGLER_PID" 2>/dev/null || true
wait "$STRAGGLER_PID" 2>/dev/null || true
if grep -q panicked "$OUT/straggler.err" "$OUT"/client-*.err "$OUT/serve.err"; then
  echo "a process panicked:" >&2
  cat "$OUT/straggler.err" "$OUT"/client-*.err >&2
  exit 1
fi

python3 - "$OUT/serve.json" "$OUT/client-0-29.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
rounds = report["trace"]["rounds"]
assert len(rounds) == 3, rounds
assert rounds[0]["participants"] == 120, rounds[0]
assert rounds[2]["participants"] == 90, rounds[2]
drops = report["stragglers"]
assert len(drops) == 30, len(drops)
assert all(d["round"] == 2 and 90 <= d["client"] <= 119 for d in drops), drops
assert report["connections"] == 4, report["connections"]
assert report["communication"]["total_bytes"] > 0
shard = json.load(open(sys.argv[2]))["summary"]
assert shard["rounds_finished"] == 3 and shard["dropped"] == 0, shard
print("net smoke OK: 3 rounds, straggler shard dropped in round 2, trace valid")
EOF
