#!/usr/bin/env python3
"""Gate peak-heap regressions in the paper-scale benchmark.

Compares BENCH_paper_scale.json (fresh run) against the checked-in
baseline ci/paper_scale_baseline.json per preset and fails if the live
run's peak heap exceeds baseline by more than the tolerance (default
20%). Throughput is reported but not gated: CI runner speed varies, heap
footprint does not.

On top of the relative gate, presets listed in ABSOLUTE_PEAK_LIMITS are
held to a hard ceiling so the item-scoped-client win (Gowalla: 10.9 GB of
full per-client tables -> well under 1 GB) can never silently regress by
baseline drift.
"""

import json
import os
import sys

TOLERANCE = float(os.environ.get("PTF_RSS_TOLERANCE", "0.20"))

# Hard peak-heap ceilings in bytes, independent of the baseline file.
ABSOLUTE_PEAK_LIMITS = {
    "Gowalla": 1 << 30,  # 1 GiB — was 10.9 GB before item-scoped clients
}

# Throughput floors in rounds/sec — the adaptive-storage win (ML-100K:
# 1.70 r/s all-sparse -> ~2.2+ with the dense fallback) and the
# vectorized-kernel win on top of it (PR 8: chunked-reduction kernels +
# arena autograd tape, ~+10% MF/MF end-to-end on the same box) must not
# silently regress. Runner speed still varies, so the floor is enforced
# with a tolerance (PTF_RPS_TOLERANCE, default 15%) rather than as a
# hard edge.
MIN_ROUNDS_PER_SEC = {
    "MovieLens-100K": 2.4,
}
RPS_TOLERANCE = float(os.environ.get("PTF_RPS_TOLERANCE", "0.15"))

# Steady-state client-path allocations: zero for full tables; item-scoped
# clients may materialize first-touch rows (fresh negatives each round),
# bounded by a small per-client constant.
ALLOWED_ALLOCS_PER_CLIENT = 16

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load(path):
    with open(path) as f:
        return {row["preset"]: row for row in json.load(f)["rows"]}


def main():
    fresh = load(os.path.join(ROOT, "BENCH_paper_scale.json"))
    baseline = load(os.path.join(ROOT, "ci", "paper_scale_baseline.json"))
    failures = []
    for preset, base in baseline.items():
        if preset not in fresh:
            # CI runs a preset subset (hosted runners lack the RAM for
            # Gowalla's 8,392 per-client item tables); gate what ran
            print(f"{preset:16} not in this run, skipping")
            continue
        row = fresh[preset]
        base_peak = base["peak_heap_bytes"]
        live_peak = row["peak_heap_bytes"]
        ratio = live_peak / base_peak if base_peak else float("inf")
        status = "OK" if ratio <= 1.0 + TOLERANCE else "REGRESSION"
        print(
            f"{preset:16} peak heap {live_peak / 2**20:8.1f} MB "
            f"(baseline {base_peak / 2**20:8.1f} MB, x{ratio:.3f}) "
            f"rounds/sec {row['rounds_per_sec']:.3f}  {status}"
        )
        if status != "OK":
            failures.append(
                f"{preset}: peak heap {live_peak} exceeds baseline "
                f"{base_peak} by more than {TOLERANCE:.0%}"
            )
        floor = MIN_ROUNDS_PER_SEC.get(preset)
        if floor is not None and row["rounds_per_sec"] < floor * (1.0 - RPS_TOLERANCE):
            failures.append(
                f"{preset}: {row['rounds_per_sec']:.3f} rounds/sec is below the "
                f"{floor} floor (tolerance {RPS_TOLERANCE:.0%}) — the adaptive "
                "client-storage win regressed"
            )
        limit = ABSOLUTE_PEAK_LIMITS.get(preset)
        if limit is not None and live_peak > limit:
            failures.append(
                f"{preset}: peak heap {live_peak} exceeds the absolute "
                f"ceiling {limit} ({limit / 2**30:.1f} GiB) — the "
                "item-scoped client win regressed"
            )
        alloc_bound = ALLOWED_ALLOCS_PER_CLIENT * row.get("users", 0)
        if row.get("final_round_client_allocs", 0) > alloc_bound and row.get("rounds", 0) >= 3:
            failures.append(
                f"{preset}: steady-state client path performed "
                f"{row['final_round_client_allocs']} heap allocations "
                f"(> {alloc_bound} = {ALLOWED_ALLOCS_PER_CLIENT}/client; "
                "only first-touch row materialization is allowed)"
            )
    if failures:
        for f in failures:
            print(f"::error::{f}")
        sys.exit(1)
    print("paper-scale memory gate passed")


if __name__ == "__main__":
    main()
