#!/usr/bin/env python3
"""Gate peak-heap regressions in the paper-scale benchmark.

Compares BENCH_paper_scale.json (fresh run) against the checked-in
baseline ci/paper_scale_baseline.json per preset and fails if the live
run's peak heap exceeds baseline by more than the tolerance (default
20%). Throughput is reported but not gated: CI runner speed varies, heap
footprint does not.
"""

import json
import os
import sys

TOLERANCE = float(os.environ.get("PTF_RSS_TOLERANCE", "0.20"))

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load(path):
    with open(path) as f:
        return {row["preset"]: row for row in json.load(f)["rows"]}


def main():
    fresh = load(os.path.join(ROOT, "BENCH_paper_scale.json"))
    baseline = load(os.path.join(ROOT, "ci", "paper_scale_baseline.json"))
    failures = []
    for preset, base in baseline.items():
        if preset not in fresh:
            # CI runs a preset subset (hosted runners lack the RAM for
            # Gowalla's 8,392 per-client item tables); gate what ran
            print(f"{preset:16} not in this run, skipping")
            continue
        row = fresh[preset]
        base_peak = base["peak_heap_bytes"]
        live_peak = row["peak_heap_bytes"]
        ratio = live_peak / base_peak if base_peak else float("inf")
        status = "OK" if ratio <= 1.0 + TOLERANCE else "REGRESSION"
        print(
            f"{preset:16} peak heap {live_peak / 2**20:8.1f} MB "
            f"(baseline {base_peak / 2**20:8.1f} MB, x{ratio:.3f}) "
            f"rounds/sec {row['rounds_per_sec']:.3f}  {status}"
        )
        if status != "OK":
            failures.append(
                f"{preset}: peak heap {live_peak} exceeds baseline "
                f"{base_peak} by more than {TOLERANCE:.0%}"
            )
        if row.get("final_round_client_allocs", 0) != 0 and row.get("rounds", 0) >= 3:
            failures.append(
                f"{preset}: steady-state client path performed "
                f"{row['final_round_client_allocs']} heap allocations (expected 0)"
            )
    if failures:
        for f in failures:
            print(f"::error::{f}")
        sys.exit(1)
    print("paper-scale memory gate passed")


if __name__ == "__main__":
    main()
