#!/usr/bin/env python3
"""Gate the cohort runtime's flat-heap guarantee.

Reads the `scale_rows` section of BENCH_paper_scale.json (written by
`PTF_BENCH_PRESETS=scale-10k,scale-100k,... cargo bench --bench
bench_paper_scale`) and fails unless peak heap stays bounded by the
cohort — not the user count — as the fleet grows.

The runtime's heap has two parts:

* an O(cohort) part — resident client models, server state, scratch —
  identical across presets (same cohort/participant knobs), and
* O(users) *index* transients that are fundamental and cheap: the arena
  writer's u64 indptr (8 B/user, freed when generation finishes), the
  trainable-user sweep and the per-round partial Fisher-Yates
  participation draw (4 B/user of u32 each).

So the gate allows peak(large) - peak(small) up to
PER_USER_BYTES * (users_large - users_small) + ABS_SLACK_BYTES and
nothing more. Any per-user *model* state (~tens of KB/user) blows the
bound by orders of magnitude immediately. Measured on the dev container
(MF/MF, 3 rounds, 256 participants, cohort 1024): 10k users -> 7.0 MB
peak, 100k -> 7.8 MB, 1M -> 14.9 MB — ~8 B/user of growth, i.e. the
indptr.
"""

import json
import os
import sys

# 2x the measured ~8 B/user so runner variance in transient high-water
# marks cannot flake the gate, while per-user model state still fails.
PER_USER_BYTES = int(os.environ.get("PTF_SCALE_PER_USER_BYTES", "16"))
ABS_SLACK_BYTES = int(os.environ.get("PTF_SCALE_ABS_SLACK", str(8 << 20)))

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main():
    path = os.path.join(ROOT, "BENCH_paper_scale.json")
    with open(path) as f:
        rows = json.load(f).get("scale_rows", [])
    if len(rows) < 2:
        print(f"::error::need at least two scale_rows in {path} to compare, got {len(rows)}")
        sys.exit(1)
    rows.sort(key=lambda r: r["users"])
    for row in rows:
        print(
            f"{row['preset']:12} {row['users']:>9} users  "
            f"peak heap {row['peak_heap_bytes'] / 2**20:8.1f} MB  "
            f"arena {row['arena_bytes'] / 2**20:8.1f} MB (on disk)  "
            f"rounds/sec {row['rounds_per_sec']:.3f}"
        )
    failures = []
    small = rows[0]
    for large in rows[1:]:
        growth = large["peak_heap_bytes"] - small["peak_heap_bytes"]
        allowed = PER_USER_BYTES * (large["users"] - small["users"]) + ABS_SLACK_BYTES
        verdict = "OK" if growth <= allowed else "NOT FLAT"
        print(
            f"{small['preset']} -> {large['preset']}: "
            f"{large['users'] / small['users']:.0f}x users, heap growth "
            f"{growth / 2**20:+.1f} MB (allowed {allowed / 2**20:.1f} MB)  {verdict}"
        )
        if growth > allowed:
            failures.append(
                f"{large['preset']}: peak heap grew {growth} bytes over "
                f"{small['preset']} (> {allowed} = {PER_USER_BYTES} B/user "
                "+ slack) — per-user state leaked into the cohort runtime"
            )
    if failures:
        for f in failures:
            print(f"::error::{f}")
        sys.exit(1)
    print("scale flat-heap gate passed")


if __name__ == "__main__":
    main()
