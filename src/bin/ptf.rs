//! `ptf` — the command-line entry point of the PTF-FedRec reproduction.
//!
//! See `ptf help` (or [`ptf_fedrec::cli::USAGE`]) for the commands.

use ptf_fedrec::cli::{parse, Command, DefenseChoice, USAGE};
use ptf_fedrec::comm::format_bytes;
use ptf_fedrec::core::{DefenseKind, PtfConfig, PtfFedRec};
use ptf_fedrec::data::{DatasetPreset, DatasetStats, Scale, TrainTestSplit};
use ptf_fedrec::models::{ModelHyper, ModelKind};
use ptf_fedrec::privacy::TopGuessAttack;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(cmd) => {
            if let Err(e) = run(cmd) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn scaled_hyper(scale: Scale) -> ModelHyper {
    match scale {
        Scale::Paper => ModelHyper::default(),
        Scale::Small => ModelHyper::small(),
    }
}

fn scaled_config(scale: Scale, seed: u64) -> PtfConfig {
    let mut cfg = match scale {
        Scale::Paper => PtfConfig::paper(),
        Scale::Small => PtfConfig::small(),
    };
    cfg.seed = seed;
    cfg
}

fn load_split(dataset: DatasetPreset, scale: Scale, seed: u64) -> TrainTestSplit {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let data = dataset.generate(scale, &mut rng);
    TrainTestSplit::split_80_20(&data, &mut rng)
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Stats { scale, seed } => {
            for preset in DatasetPreset::ALL {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let data = preset.generate(scale, &mut rng);
                println!("{}", DatasetStats::of(&data));
            }
            Ok(())
        }
        Command::Train { dataset, client, server, rounds, scale, seed, k, save } => {
            let split = load_split(dataset, scale, seed);
            let mut cfg = scaled_config(scale, seed);
            if let Some(r) = rounds {
                cfg.rounds = r;
            }
            eprintln!(
                "training PTF-FedRec on {} ({} clients, {} items): client={}, hidden server={}",
                dataset.name(),
                split.train.num_users(),
                split.train.num_items(),
                client.name(),
                server.name()
            );
            let mut fed = PtfFedRec::new(&split.train, client, server, &scaled_hyper(scale), cfg);
            let trace = fed.run();
            for r in &trace.rounds {
                eprintln!(
                    "  round {:>3}: client loss {:.4}, server loss {:.4}",
                    r.round, r.mean_client_loss, r.server_loss
                );
            }
            let report = fed.evaluate(&split.train, &split.test, k);
            let summary = fed.ledger().summary();
            println!("{report}");
            println!(
                "communication: {} per client-round (total {})",
                format_bytes(summary.avg_client_bytes_per_round),
                format_bytes(summary.total_bytes as f64)
            );
            if let Some(path) = save {
                let state = fed
                    .server()
                    .model()
                    .export_state()
                    .ok_or("this server model does not support checkpointing")?;
                std::fs::write(&path, state).map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("hidden server model checkpointed to {path}");
            }
            Ok(())
        }
        Command::Privacy { dataset, defense, epsilon, scale, seed } => {
            let split = load_split(dataset, scale, seed);
            let mut cfg = scaled_config(scale, seed);
            cfg.defense = match defense {
                DefenseChoice::None => DefenseKind::NoDefense,
                DefenseChoice::Ldp => DefenseKind::Ldp { epsilon },
                DefenseChoice::Sampling => DefenseKind::Sampling,
                DefenseChoice::Full => DefenseKind::SamplingSwapping,
            };
            let defense_name = cfg.defense.name();
            let mut fed = PtfFedRec::new(
                &split.train,
                ModelKind::NeuMf,
                ModelKind::Ngcf,
                &scaled_hyper(scale),
                cfg,
            );
            fed.run();
            let f1 = TopGuessAttack::default().mean_f1(
                fed.last_uploads()
                    .iter()
                    .map(|u| (u.predictions.as_slice(), u.audit_positives.as_slice())),
            );
            let report = fed.evaluate(&split.train, &split.test, 20);
            println!("defense: {defense_name}");
            println!("top-guess attack F1: {f1:.4} (lower = better privacy)");
            println!("{report}");
            Ok(())
        }
        Command::Generate { dataset, out, scale, seed } => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let data = dataset.generate(scale, &mut rng);
            std::fs::write(&out, data.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote {} ({})", out, DatasetStats::of(&data));
            Ok(())
        }
    }
}
