//! `ptf` — the command-line entry point of the PTF-FedRec reproduction.
//!
//! See `ptf help` (or [`ptf_fedrec::cli::USAGE`]) for the commands. Every
//! protocol — PTF-FedRec and all baselines — runs through the same
//! `FederatedProtocol`-typed engine path: one `match` builds a
//! `Box<dyn FederatedProtocol>`, and run/evaluate/report plumbing below it
//! is written exactly once.

use ptf_fedrec::baselines::{
    Centralized, CentralizedConfig, Fcf, FcfConfig, FedMf, FedMfConfig, MetaMf, MetaMfConfig,
};
use ptf_fedrec::cli::{parse, Command, DefenseChoice, ProtocolChoice, StorageChoice, USAGE};
use ptf_fedrec::comm::{format_bytes, LedgerSummary};
use ptf_fedrec::core::{DefenseKind, Federation, PtfConfig, PtfFedRec, StorageMode, StoragePolicy};
use ptf_fedrec::data::{DatasetPreset, DatasetStats, Scale, TrainTestSplit};
use ptf_fedrec::federated::{Engine, FederatedProtocol, RunTrace, TraceRecorder};
use ptf_fedrec::metrics::RankingReport;
use ptf_fedrec::models::{evaluate_model, ModelHyper, ModelKind};
use ptf_fedrec::net::{
    run_server, run_shard, tcp, NetServerOptions, ShardOptions, ShardSummary, Straggle,
    StragglerDrop,
};
use ptf_fedrec::privacy::TopGuessAttack;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(cmd) => {
            if let Err(e) = run(cmd) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn scaled_hyper(scale: Scale) -> ModelHyper {
    match scale {
        Scale::Paper => ModelHyper::default(),
        Scale::Small => ModelHyper::small(),
    }
}

fn scaled_config(scale: Scale, seed: u64) -> PtfConfig {
    let mut cfg = match scale {
        Scale::Paper => PtfConfig::paper(),
        Scale::Small => PtfConfig::small(),
    };
    cfg.seed = seed;
    cfg
}

fn load_split(dataset: DatasetPreset, scale: Scale, seed: u64) -> TrainTestSplit {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let data = dataset.generate(scale, &mut rng);
    TrainTestSplit::split_80_20(&data, &mut rng)
}

/// The config a networked run uses. `ptf serve` and every `ptf client`
/// build this independently from the same flags — the handshake
/// fingerprint rejects the connection if they disagree.
fn net_config(scale: Scale, seed: u64, rounds: Option<u32>, participation: f64) -> PtfConfig {
    let mut cfg = scaled_config(scale, seed);
    if let Some(r) = rounds {
        cfg.rounds = r;
    }
    cfg.participation.fraction = participation;
    cfg
}

/// One `match`, one `Box<dyn FederatedProtocol>`: everything downstream
/// (run, evaluate, report, JSON) is protocol-agnostic.
#[allow(clippy::too_many_arguments)]
fn build_protocol(
    choice: ProtocolChoice,
    train: &ptf_fedrec::data::Dataset,
    client: ModelKind,
    server: ModelKind,
    rounds: Option<u32>,
    scale: Scale,
    seed: u64,
    threads: usize,
    storage: StoragePolicy,
) -> Result<Box<dyn FederatedProtocol>, String> {
    let small = matches!(scale, Scale::Small);
    Ok(match choice {
        ProtocolChoice::Ptf => {
            let mut cfg = scaled_config(scale, seed);
            cfg.threads = threads;
            cfg.storage = storage;
            if let Some(r) = rounds {
                cfg.rounds = r;
            }
            Box::new(
                PtfFedRec::try_new(train, client, server, &scaled_hyper(scale), cfg)
                    .map_err(|e| e.to_string())?,
            )
        }
        ProtocolChoice::Fcf => {
            let mut cfg = if small { FcfConfig::small() } else { FcfConfig::default() };
            cfg.seed = seed;
            cfg.threads = threads;
            if let Some(r) = rounds {
                cfg.rounds = r;
            }
            Box::new(Fcf::new(train, cfg))
        }
        ProtocolChoice::FedMf => {
            let mut cfg = if small { FedMfConfig::small() } else { FedMfConfig::default() };
            cfg.base.seed = seed;
            cfg.base.threads = threads;
            if let Some(r) = rounds {
                cfg.base.rounds = r;
            }
            Box::new(FedMf::new(train, cfg))
        }
        ProtocolChoice::MetaMf => {
            let mut cfg = if small { MetaMfConfig::small() } else { MetaMfConfig::default() };
            cfg.seed = seed;
            cfg.threads = threads;
            if let Some(r) = rounds {
                cfg.rounds = r;
            }
            Box::new(MetaMf::new(train, cfg))
        }
        ProtocolChoice::Centralized => {
            let mut cfg =
                if small { CentralizedConfig::small() } else { CentralizedConfig::default() };
            cfg.seed = seed;
            cfg.threads = threads;
            if let Some(r) = rounds {
                cfg.epochs = r;
            }
            Box::new(Centralized::new(server, train, &scaled_hyper(scale), cfg))
        }
    })
}

/// The machine-readable shape of `ptf train --json`.
#[derive(Serialize)]
struct TrainJson {
    protocol: String,
    dataset: String,
    seed: u64,
    trace: RunTrace,
    report: RankingReport,
    communication: LedgerSummary,
}

/// The machine-readable shape of `ptf serve --json` — `ptf train`'s
/// fields plus the networked extras.
#[derive(Serialize)]
struct ServeJson {
    dataset: String,
    seed: u64,
    trace: RunTrace,
    report: RankingReport,
    communication: LedgerSummary,
    stragglers: Vec<StragglerDrop>,
    connections: usize,
}

/// The machine-readable shape of `ptf client --json`.
#[derive(Serialize)]
struct ClientJson {
    dataset: String,
    seed: u64,
    addr: String,
    summary: ShardSummary,
}

/// The machine-readable shape of `ptf privacy --json`.
#[derive(Serialize)]
struct PrivacyJson {
    defense: String,
    attack_f1: f64,
    dataset: String,
    seed: u64,
    trace: RunTrace,
    report: RankingReport,
    communication: LedgerSummary,
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Stats { scale, seed } => {
            for preset in DatasetPreset::ALL {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let data = preset.generate(scale, &mut rng);
                println!("{}", DatasetStats::of(&data));
            }
            Ok(())
        }
        Command::Train {
            dataset,
            protocol,
            client,
            server,
            rounds,
            scale,
            seed,
            k,
            threads,
            save,
            storage,
            evict_interval,
            evict_budget,
            json,
        } => {
            let split = load_split(dataset, scale, seed);
            let policy = StoragePolicy {
                mode: match storage {
                    StorageChoice::Auto => StoragePolicy::default().mode,
                    StorageChoice::Sparse => StorageMode::Sparse,
                    StorageChoice::Dense => StorageMode::Dense,
                },
                evict_interval,
                evict_budget,
            };
            let boxed = build_protocol(
                protocol,
                &split.train,
                client,
                server,
                rounds,
                scale,
                seed,
                threads,
                policy,
            )?;
            eprintln!(
                "training {} on {} ({} clients, {} items)",
                boxed.name(),
                dataset.name(),
                split.train.num_users(),
                split.train.num_items(),
            );
            let recorder = TraceRecorder::new();
            let mut engine = Engine::new(boxed).with_observer(recorder.clone());
            let trace = engine.run();
            for r in &trace.rounds {
                eprintln!(
                    "  round {:>3}: client loss {:.4}, server loss {:.4}",
                    r.round, r.mean_client_loss, r.server_loss
                );
            }
            let report = engine.evaluate(&split.train, &split.test, k);
            let summary = engine.ledger().summary();
            if json {
                let out = TrainJson {
                    protocol: engine.protocol().name().to_string(),
                    dataset: dataset.name().to_string(),
                    seed,
                    trace: recorder.trace(),
                    report,
                    communication: summary,
                };
                println!("{}", serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?);
            } else {
                println!("{report}");
                println!(
                    "communication: {} per client-round (total {})",
                    format_bytes(summary.avg_client_bytes_per_round),
                    format_bytes(summary.total_bytes as f64)
                );
            }
            if let Some(path) = save {
                let state = engine
                    .protocol()
                    .recommender()
                    .export_state()
                    .ok_or("this model does not support checkpointing")?;
                std::fs::write(&path, state).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("trained model checkpointed to {path}");
            }
            Ok(())
        }
        Command::Privacy { dataset, defense, epsilon, scale, seed, threads, json } => {
            let split = load_split(dataset, scale, seed);
            let mut cfg = scaled_config(scale, seed);
            cfg.threads = threads;
            cfg.defense = match defense {
                DefenseChoice::None => DefenseKind::NoDefense,
                DefenseChoice::Ldp => DefenseKind::Ldp { epsilon },
                DefenseChoice::Sampling => DefenseKind::Sampling,
                DefenseChoice::Full => DefenseKind::SamplingSwapping,
            };
            let defense_name = cfg.defense.name();
            let recorder = TraceRecorder::new();
            let mut fed = Federation::builder(&split.train)
                .client_model(ModelKind::NeuMf)
                .server_model(ModelKind::Ngcf)
                .hyper(scaled_hyper(scale))
                .config(cfg)
                .observer(recorder.clone())
                .build()
                .map_err(|e| e.to_string())?;
            fed.run();
            let f1 = TopGuessAttack::default().mean_f1(
                fed.protocol()
                    .last_uploads()
                    .iter()
                    .map(|u| (u.predictions.as_slice(), u.audit_positives.as_slice())),
            );
            let report = fed.evaluate(&split.train, &split.test, 20);
            if json {
                let out = PrivacyJson {
                    defense: defense_name.to_string(),
                    attack_f1: f1,
                    dataset: dataset.name().to_string(),
                    seed,
                    trace: recorder.trace(),
                    report,
                    communication: fed.ledger().summary(),
                };
                println!("{}", serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?);
            } else {
                println!("defense: {defense_name}");
                println!("top-guess attack F1: {f1:.4} (lower = better privacy)");
                println!("{report}");
            }
            Ok(())
        }
        Command::Serve {
            dataset,
            client,
            server,
            rounds,
            scale,
            seed,
            k,
            port,
            participation,
            deadline_ms,
            gather_ms,
            json,
        } => {
            let split = load_split(dataset, scale, seed);
            let opts = NetServerOptions {
                cfg: net_config(scale, seed, rounds, participation),
                client_kind: client,
                server_kind: server,
                hyper: scaled_hyper(scale),
                round_deadline: Duration::from_millis(deadline_ms),
                gather_timeout: Duration::from_millis(gather_ms),
                verbose: true,
            };
            let endpoint = tcp::serve(("127.0.0.1", port))
                .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
            // the smoke tests (and humans scripting ephemeral ports) parse
            // this line, so it goes out before anything blocks
            eprintln!("listening on {}", endpoint.local_addr);
            eprintln!(
                "serving ptf-fedrec on {} ({} clients, {} items, {} rounds)",
                dataset.name(),
                split.train.num_users(),
                split.train.num_items(),
                opts.cfg.rounds,
            );
            let (report, trained) =
                run_server(&split.train, &endpoint.events, &opts).map_err(|e| e.to_string())?;
            let ranking = evaluate_model(trained.model(), &split.train, &split.test, k);
            if json {
                let out = ServeJson {
                    dataset: dataset.name().to_string(),
                    seed,
                    trace: report.trace,
                    report: ranking,
                    communication: report.communication,
                    stragglers: report.stragglers,
                    connections: report.connections,
                };
                println!("{}", serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?);
            } else {
                println!("{ranking}");
                println!(
                    "communication: {} per client-round (total {})",
                    format_bytes(report.communication.avg_client_bytes_per_round),
                    format_bytes(report.communication.total_bytes as f64)
                );
                println!(
                    "connections: {}, stragglers dropped: {}",
                    report.connections,
                    report.stragglers.len()
                );
                for s in &report.stragglers {
                    println!("  round {:>3}: dropped client {}", s.round, s.client);
                }
            }
            Ok(())
        }
        Command::Client {
            addr,
            dataset,
            client,
            server,
            rounds,
            scale,
            seed,
            ids,
            participation,
            straggle_round,
            straggle_ms,
            json,
        } => {
            let split = load_split(dataset, scale, seed);
            let fleet = split.train.num_users() as u32;
            let ids: Vec<u32> = match ids {
                Some((lo, hi)) => (lo..=hi).collect(),
                None => (0..fleet).collect(),
            };
            let opts = ShardOptions {
                cfg: net_config(scale, seed, rounds, participation),
                client_kind: client,
                server_kind: server,
                hyper: scaled_hyper(scale),
                ids,
                straggle: straggle_round
                    .map(|round| Straggle { round, delay: Duration::from_millis(straggle_ms) }),
            };
            eprintln!(
                "hosting clients {}..={} of {} on {}",
                opts.ids.first().copied().unwrap_or(0),
                opts.ids.last().copied().unwrap_or(0),
                fleet,
                addr,
            );
            let mut conn = tcp::connect(addr.as_str())
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            let summary = run_shard(&split.train, &mut conn, &opts).map_err(|e| e.to_string())?;
            if json {
                let out = ClientJson { dataset: dataset.name().to_string(), seed, addr, summary };
                println!("{}", serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?);
            } else {
                println!(
                    "shard done: {} clients, {} uploads, {} dropped, {} rounds, {} up / {} down",
                    summary.clients,
                    summary.participations,
                    summary.dropped,
                    summary.rounds_finished,
                    format_bytes(summary.bytes_up as f64),
                    format_bytes(summary.bytes_down as f64),
                );
            }
            Ok(())
        }
        Command::Generate { dataset, out, scale, seed } => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let data = dataset.generate(scale, &mut rng);
            std::fs::write(&out, data.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote {} ({})", out, DatasetStats::of(&data));
            Ok(())
        }
    }
}
