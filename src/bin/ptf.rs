//! `ptf` — the command-line entry point of the PTF-FedRec reproduction.
//!
//! See `ptf help` (or [`ptf_fedrec::cli::USAGE`]) for the commands. Every
//! protocol — PTF-FedRec and all baselines — runs through the same
//! `FederatedProtocol`-typed engine path: one `match` builds a
//! `Box<dyn FederatedProtocol>`, and run/evaluate/report plumbing below it
//! is written exactly once.

use ptf_fedrec::baselines::{
    Centralized, CentralizedConfig, Fcf, FcfConfig, FedMf, FedMfConfig, MetaMf, MetaMfConfig,
};
use ptf_fedrec::cli::{
    parse, Command, DataChoice, DefenseChoice, ProtocolChoice, StorageChoice, USAGE,
};
use ptf_fedrec::comm::{format_bytes, CommLedger, LedgerSummary};
use ptf_fedrec::core::{
    checkpoint, config_fingerprint, CohortData, CohortFedRec, CohortOptions, DefenseKind,
    Federation, PtfConfig, PtfFedRec, ServerScope, StorageMode, StoragePolicy, StoreKind,
};
use ptf_fedrec::data::{CsrArena, DatasetPreset, DatasetStats, Scale, ScaleConfig, TrainTestSplit};
use ptf_fedrec::federated::{
    Engine, FederatedProtocol, Participation, RoundObserver, RunTrace, TraceRecorder,
};
use ptf_fedrec::metrics::RankingReport;
use ptf_fedrec::models::{evaluate_model, ModelHyper, ModelKind};
use ptf_fedrec::net::{
    run_server, run_shard, tcp, NetServerOptions, ShardOptions, ShardSummary, Straggle,
    StragglerDrop,
};
use ptf_fedrec::privacy::TopGuessAttack;
use rand::SeedableRng;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(cmd) => {
            if let Err(e) = run(cmd) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn scaled_hyper(scale: Scale) -> ModelHyper {
    match scale {
        Scale::Paper => ModelHyper::default(),
        Scale::Small => ModelHyper::small(),
    }
}

fn scaled_config(scale: Scale, seed: u64) -> PtfConfig {
    let mut cfg = match scale {
        Scale::Paper => PtfConfig::paper(),
        Scale::Small => PtfConfig::small(),
    };
    cfg.seed = seed;
    cfg
}

fn load_split(dataset: DatasetPreset, scale: Scale, seed: u64) -> TrainTestSplit {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let data = dataset.generate(scale, &mut rng);
    TrainTestSplit::split_80_20(&data, &mut rng)
}

/// The config a networked run uses. `ptf serve` and every `ptf client`
/// build this independently from the same flags — the handshake
/// fingerprint rejects the connection if they disagree.
fn net_config(scale: Scale, seed: u64, rounds: Option<u32>, participation: f64) -> PtfConfig {
    let mut cfg = scaled_config(scale, seed);
    if let Some(r) = rounds {
        cfg.rounds = r;
    }
    cfg.participation.fraction = participation;
    cfg
}

/// One `match`, one `Box<dyn FederatedProtocol>`: everything downstream
/// (run, evaluate, report, JSON) is protocol-agnostic.
#[allow(clippy::too_many_arguments)]
fn build_protocol(
    choice: ProtocolChoice,
    train: &ptf_fedrec::data::Dataset,
    client: ModelKind,
    server: ModelKind,
    rounds: Option<u32>,
    scale: Scale,
    seed: u64,
    threads: usize,
    storage: StoragePolicy,
) -> Result<Box<dyn FederatedProtocol>, String> {
    let small = matches!(scale, Scale::Small);
    Ok(match choice {
        ProtocolChoice::Ptf => {
            let mut cfg = scaled_config(scale, seed);
            cfg.threads = threads;
            cfg.storage = storage;
            if let Some(r) = rounds {
                cfg.rounds = r;
            }
            Box::new(
                PtfFedRec::try_new(train, client, server, &scaled_hyper(scale), cfg)
                    .map_err(|e| e.to_string())?,
            )
        }
        ProtocolChoice::Fcf => {
            let mut cfg = if small { FcfConfig::small() } else { FcfConfig::default() };
            cfg.seed = seed;
            cfg.threads = threads;
            if let Some(r) = rounds {
                cfg.rounds = r;
            }
            Box::new(Fcf::new(train, cfg))
        }
        ProtocolChoice::FedMf => {
            let mut cfg = if small { FedMfConfig::small() } else { FedMfConfig::default() };
            cfg.base.seed = seed;
            cfg.base.threads = threads;
            if let Some(r) = rounds {
                cfg.base.rounds = r;
            }
            Box::new(FedMf::new(train, cfg))
        }
        ProtocolChoice::MetaMf => {
            let mut cfg = if small { MetaMfConfig::small() } else { MetaMfConfig::default() };
            cfg.seed = seed;
            cfg.threads = threads;
            if let Some(r) = rounds {
                cfg.rounds = r;
            }
            Box::new(MetaMf::new(train, cfg))
        }
        ProtocolChoice::Centralized => {
            let mut cfg =
                if small { CentralizedConfig::small() } else { CentralizedConfig::default() };
            cfg.seed = seed;
            cfg.threads = threads;
            if let Some(r) = rounds {
                cfg.epochs = r;
            }
            Box::new(Centralized::new(server, train, &scaled_hyper(scale), cfg))
        }
    })
}

/// The machine-readable shape of `ptf train --json`.
#[derive(Serialize)]
struct TrainJson {
    protocol: String,
    dataset: String,
    seed: u64,
    trace: RunTrace,
    report: RankingReport,
    communication: LedgerSummary,
}

/// The machine-readable shape of `ptf train --json` on a `scale-*`
/// dataset: streamed data has no held-out split, so there is no ranking
/// report — the trace and the Table IV communication numbers are the run.
#[derive(Serialize)]
struct ScaleTrainJson {
    protocol: String,
    dataset: String,
    users: usize,
    seed: u64,
    trace: RunTrace,
    communication: LedgerSummary,
}

/// Everything `ptf train` parsed, bundled so the three run paths (plain
/// engine, cohort-scheduled preset, streamed scale) share one signature.
struct TrainArgs {
    protocol: ProtocolChoice,
    client: ModelKind,
    server: ModelKind,
    rounds: Option<u32>,
    scale: Scale,
    seed: u64,
    k: usize,
    threads: usize,
    save: Option<String>,
    policy: StoragePolicy,
    users: Option<usize>,
    cohort: Option<usize>,
    participants: Option<usize>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: u32,
    resume: bool,
    halt_after: Option<u32>,
    json: bool,
}

/// Builds (and on `--resume` rewinds) a cohort protocol, then drives it
/// to its round budget — or to `--halt-after` — committing a durable
/// checkpoint every `checkpoint_every` completed rounds plus one at the
/// stopping point whenever `--checkpoint` is set. Returns the engine
/// (for evaluation/export) and the recorder, which after a resume holds
/// the *whole* run's trace: the manifest's committed rounds are replayed
/// into it before the first live round.
#[allow(clippy::too_many_arguments)]
fn run_cohort_engine(
    data: CohortData,
    client: ModelKind,
    server: ModelKind,
    hyper: &ModelHyper,
    cfg: PtfConfig,
    opts: CohortOptions,
    ckpt: Option<&Path>,
    checkpoint_every: u32,
    resume: bool,
    halt_after: Option<u32>,
) -> Result<(Engine<CohortFedRec>, TraceRecorder), String> {
    let fingerprint =
        config_fingerprint(&cfg, client, server, hyper, data.num_users(), data.num_items());
    let budget = cfg.rounds;
    let mut protocol =
        CohortFedRec::try_new(data, client, server, hyper, cfg, opts).map_err(|e| e.to_string())?;
    let recorder = TraceRecorder::new();
    let mut engine = if resume {
        let dir = ckpt.ok_or("--resume requires --checkpoint DIR")?;
        let manifest = checkpoint::load_manifest(dir).map_err(|e| e.to_string())?;
        manifest.verify_fingerprint(fingerprint).map_err(|e| e.to_string())?;
        checkpoint::resume_protocol(dir, &manifest, &mut protocol).map_err(|e| e.to_string())?;
        let ledger = CommLedger::restore(&manifest.ledger)
            .map_err(|e| format!("checkpoint corrupt: {e}"))?;
        let mut replay = recorder.clone();
        for t in &manifest.traces {
            replay.on_round_end(t);
        }
        eprintln!("resumed at round {} from {}", manifest.next_round, dir.display());
        Engine::resume(protocol, ledger, manifest.next_round)
    } else {
        Engine::new(protocol)
    }
    .with_observer(recorder.clone());
    while engine.rounds_completed() < budget {
        if halt_after.is_some_and(|h| engine.rounds_completed() >= h) {
            break;
        }
        let t = engine.run_round();
        eprintln!(
            "  round {:>3}: client loss {:.4}, server loss {:.4}",
            t.round, t.mean_client_loss, t.server_loss
        );
        let done = engine.rounds_completed();
        let at_end = done >= budget;
        let halting = halt_after.is_some_and(|h| done >= h);
        if let Some(dir) = ckpt {
            if at_end || halting || (checkpoint_every > 0 && done % checkpoint_every == 0) {
                checkpoint::save_checkpoint(
                    dir,
                    engine.protocol(),
                    engine.ledger(),
                    &recorder.trace().rounds,
                    fingerprint,
                )
                .map_err(|e| e.to_string())?;
                eprintln!("checkpoint committed at round {done} to {}", dir.display());
            }
        }
        if halting && !at_end {
            eprintln!("halting after round {done} (--halt-after)");
            break;
        }
    }
    Ok((engine, recorder))
}

/// `ptf train` on an in-RAM preset through the classic engine path (any
/// protocol, whole fleet resident, no checkpointing).
fn run_train_plain(preset: DatasetPreset, a: TrainArgs) -> Result<(), String> {
    let split = load_split(preset, a.scale, a.seed);
    let boxed = build_protocol(
        a.protocol,
        &split.train,
        a.client,
        a.server,
        a.rounds,
        a.scale,
        a.seed,
        a.threads,
        a.policy,
    )?;
    eprintln!(
        "training {} on {} ({} clients, {} items)",
        boxed.name(),
        preset.name(),
        split.train.num_users(),
        split.train.num_items(),
    );
    let recorder = TraceRecorder::new();
    let mut engine = Engine::new(boxed).with_observer(recorder.clone());
    let trace = engine.run();
    for r in &trace.rounds {
        eprintln!(
            "  round {:>3}: client loss {:.4}, server loss {:.4}",
            r.round, r.mean_client_loss, r.server_loss
        );
    }
    let report = engine.evaluate(&split.train, &split.test, a.k);
    let summary = engine.ledger().summary();
    if a.json {
        let out = TrainJson {
            protocol: engine.protocol().name().to_string(),
            dataset: preset.name().to_string(),
            seed: a.seed,
            trace: recorder.trace(),
            report,
            communication: summary,
        };
        println!("{}", serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?);
    } else {
        println!("{report}");
        println!(
            "communication: {} per client-round (total {})",
            format_bytes(summary.avg_client_bytes_per_round),
            format_bytes(summary.total_bytes as f64)
        );
    }
    save_trained_model(&engine, a.save.as_deref())
}

/// `ptf train` on one of the in-RAM Table II presets under cohort
/// scheduling and/or durable checkpointing. `ServerScope::FullFleet`
/// keeps the run bit-identical to the plain engine path.
fn run_train_cohort_preset(preset: DatasetPreset, a: TrainArgs) -> Result<(), String> {
    let split = load_split(preset, a.scale, a.seed);
    let mut cfg = scaled_config(a.scale, a.seed);
    cfg.threads = a.threads;
    cfg.storage = a.policy;
    if let Some(r) = a.rounds {
        cfg.rounds = r;
    }
    let store = match &a.checkpoint {
        Some(dir) => StoreKind::Disk(dir.join("clients")),
        None => StoreKind::Memory,
    };
    let opts = CohortOptions {
        cohort: a.cohort.unwrap_or(0),
        store,
        server_scope: ServerScope::FullFleet,
    };
    eprintln!(
        "training PTF-FedRec/cohort on {} ({} clients, {} items)",
        preset.name(),
        split.train.num_users(),
        split.train.num_items(),
    );
    let (engine, recorder) = run_cohort_engine(
        CohortData::Mem(split.train.clone()),
        a.client,
        a.server,
        &scaled_hyper(a.scale),
        cfg,
        opts,
        a.checkpoint.as_deref(),
        a.checkpoint_every,
        a.resume,
        a.halt_after,
    )?;
    let report = engine.evaluate(&split.train, &split.test, a.k);
    let summary = engine.ledger().summary();
    if a.json {
        let out = TrainJson {
            protocol: engine.protocol().name().to_string(),
            dataset: preset.name().to_string(),
            seed: a.seed,
            trace: recorder.trace(),
            report,
            communication: summary,
        };
        println!("{}", serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?);
    } else {
        println!("{report}");
        println!(
            "communication: {} per client-round (total {})",
            format_bytes(summary.avg_client_bytes_per_round),
            format_bytes(summary.total_bytes as f64)
        );
    }
    save_trained_model(&engine, a.save.as_deref())
}

/// `ptf train` on a streamed `scale-*` dataset: the fleet is generated
/// into an on-disk CSR arena (never materialized), clients live in
/// on-disk envelopes, the server is scoped to the ever-participating
/// users, and ranking evaluation is skipped (there is no held-out
/// split at this scale).
fn run_train_scale(name: &'static str, a: TrainArgs) -> Result<(), String> {
    let mut sc = ScaleConfig::preset(name).ok_or_else(|| format!("unknown scale preset {name}"))?;
    if let Some(u) = a.users {
        if u == 0 {
            return Err("--users must be > 0".to_string());
        }
        sc.num_users = u;
    }
    let mut cfg = scaled_config(a.scale, a.seed);
    cfg.threads = a.threads;
    cfg.storage = a.policy;
    if let Some(r) = a.rounds {
        cfg.rounds = r;
    }
    // exact per-round participant count: fraction 0 defers to min_clients
    let p = a.participants.unwrap_or(64).clamp(1, sc.num_users);
    cfg.participation = Participation { fraction: 0.0, min_clients: p };
    // The run's working directory: the checkpoint dir when durable (the
    // arena is part of what a resume needs), a temp dir otherwise.
    let (root, durable) = match &a.checkpoint {
        Some(dir) => (dir.clone(), true),
        None => {
            let tmp =
                std::env::temp_dir().join(format!("ptf-scale-{}-{}", std::process::id(), a.seed));
            (tmp, false)
        }
    };
    std::fs::create_dir_all(&root).map_err(|e| format!("cannot create {}: {e}", root.display()))?;
    let arena_path = root.join("data.arena");
    // The sidecar pins what the arena was generated from; matching file
    // dimensions alone would silently accept an arena streamed under a
    // different seed.
    let meta_path = root.join("data.arena.meta");
    let meta = format!("{} seed={} users={} items={}", sc.name, a.seed, sc.num_users, sc.num_items);
    if !arena_path.exists() {
        eprintln!("streaming {} users into {}", sc.num_users, arena_path.display());
        sc.write_arena(a.seed, &arena_path)
            .map_err(|e| format!("cannot write {}: {e}", arena_path.display()))?;
        std::fs::write(&meta_path, &meta)
            .map_err(|e| format!("cannot write {}: {e}", meta_path.display()))?;
    } else {
        let found = std::fs::read_to_string(&meta_path)
            .map_err(|e| format!("cannot read {}: {e}", meta_path.display()))?;
        if found != meta {
            return Err(format!(
                "{} was generated as \"{found}\" but this run wants \"{meta}\" — \
                 delete it or point --checkpoint at a fresh directory",
                arena_path.display(),
            ));
        }
    }
    let arena = CsrArena::open(&arena_path)
        .map_err(|e| format!("cannot open {}: {e}", arena_path.display()))?;
    if arena.num_users() != sc.num_users || arena.num_items() != sc.num_items {
        return Err(format!(
            "{} holds {} users x {} items but this run wants {} x {} — \
             delete it or point --checkpoint at a fresh directory",
            arena_path.display(),
            arena.num_users(),
            arena.num_items(),
            sc.num_users,
            sc.num_items,
        ));
    }
    let opts = CohortOptions {
        cohort: a.cohort.unwrap_or(1024),
        store: StoreKind::Disk(root.join("clients")),
        server_scope: ServerScope::ActiveParticipants,
    };
    eprintln!(
        "training PTF-FedRec/cohort on {} ({} clients, {} items, cohort {}, {} participants/round)",
        name,
        sc.num_users,
        sc.num_items,
        if opts.cohort == 0 { sc.num_users } else { opts.cohort },
        p,
    );
    let num_users = sc.num_users;
    let (engine, recorder) = run_cohort_engine(
        CohortData::Arena(arena),
        a.client,
        a.server,
        &scaled_hyper(a.scale),
        cfg,
        opts,
        a.checkpoint.as_deref(),
        a.checkpoint_every,
        a.resume,
        a.halt_after,
    )?;
    let summary = engine.ledger().summary();
    if a.json {
        let out = ScaleTrainJson {
            protocol: engine.protocol().name().to_string(),
            dataset: name.to_string(),
            users: num_users,
            seed: a.seed,
            trace: recorder.trace(),
            communication: summary,
        };
        println!("{}", serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?);
    } else {
        println!("scale run: {} rounds over {} users", summary.rounds, num_users);
        println!(
            "communication: {} per client-round (total {})",
            format_bytes(summary.avg_client_bytes_per_round),
            format_bytes(summary.total_bytes as f64)
        );
    }
    save_trained_model(&engine, a.save.as_deref())?;
    if !durable {
        // the arena and envelopes were working files of this run only
        let _ = std::fs::remove_dir_all(&root);
    }
    Ok(())
}

/// `--save FILE`: export the trained (server) model's state.
fn save_trained_model<P: FederatedProtocol>(
    engine: &Engine<P>,
    save: Option<&str>,
) -> Result<(), String> {
    if let Some(path) = save {
        let state = engine
            .protocol()
            .recommender()
            .export_state()
            .ok_or("this model does not support checkpointing")?;
        std::fs::write(path, state).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("trained model checkpointed to {path}");
    }
    Ok(())
}

/// The machine-readable shape of `ptf serve --json` — `ptf train`'s
/// fields plus the networked extras.
#[derive(Serialize)]
struct ServeJson {
    dataset: String,
    seed: u64,
    trace: RunTrace,
    report: RankingReport,
    communication: LedgerSummary,
    stragglers: Vec<StragglerDrop>,
    connections: usize,
}

/// The machine-readable shape of `ptf client --json`.
#[derive(Serialize)]
struct ClientJson {
    dataset: String,
    seed: u64,
    addr: String,
    summary: ShardSummary,
}

/// The machine-readable shape of `ptf privacy --json`.
#[derive(Serialize)]
struct PrivacyJson {
    defense: String,
    attack_f1: f64,
    dataset: String,
    seed: u64,
    trace: RunTrace,
    report: RankingReport,
    communication: LedgerSummary,
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Stats { scale, seed } => {
            for preset in DatasetPreset::ALL {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let data = preset.generate(scale, &mut rng);
                println!("{}", DatasetStats::of(&data));
            }
            Ok(())
        }
        Command::Train {
            dataset,
            protocol,
            client,
            server,
            rounds,
            scale,
            seed,
            k,
            threads,
            save,
            storage,
            evict_interval,
            evict_budget,
            users,
            cohort,
            participants,
            checkpoint,
            checkpoint_every,
            resume,
            halt_after,
            json,
        } => {
            let policy = StoragePolicy {
                mode: match storage {
                    StorageChoice::Auto => StoragePolicy::default().mode,
                    StorageChoice::Sparse => StorageMode::Sparse,
                    StorageChoice::Dense => StorageMode::Dense,
                },
                evict_interval,
                evict_budget,
            };
            let is_scale = matches!(dataset, DataChoice::Scale(_));
            let wants_cohort = is_scale || cohort.is_some() || checkpoint.is_some();
            if resume && checkpoint.is_none() {
                return Err("--resume requires --checkpoint DIR".to_string());
            }
            if checkpoint_every > 0 && checkpoint.is_none() {
                return Err("--checkpoint-every requires --checkpoint DIR".to_string());
            }
            if (users.is_some() || participants.is_some()) && !is_scale {
                return Err("--users/--participants apply only to the scale-* datasets".to_string());
            }
            if halt_after.is_some() && !wants_cohort {
                return Err("--halt-after requires --checkpoint, --cohort, or a scale-* dataset"
                    .to_string());
            }
            if wants_cohort && protocol != ProtocolChoice::Ptf {
                return Err(
                    "cohort scheduling and checkpointing support --protocol ptf only".to_string()
                );
            }
            let args = TrainArgs {
                protocol,
                client,
                server,
                rounds,
                scale,
                seed,
                k,
                threads,
                save,
                policy,
                users,
                cohort,
                participants,
                checkpoint: checkpoint.map(PathBuf::from),
                checkpoint_every,
                resume,
                halt_after,
                json,
            };
            match dataset {
                DataChoice::Scale(name) => run_train_scale(name, args),
                DataChoice::Preset(preset) if wants_cohort => run_train_cohort_preset(preset, args),
                DataChoice::Preset(preset) => run_train_plain(preset, args),
            }
        }
        Command::Privacy { dataset, defense, epsilon, scale, seed, threads, json } => {
            let split = load_split(dataset, scale, seed);
            let mut cfg = scaled_config(scale, seed);
            cfg.threads = threads;
            cfg.defense = match defense {
                DefenseChoice::None => DefenseKind::NoDefense,
                DefenseChoice::Ldp => DefenseKind::Ldp { epsilon },
                DefenseChoice::Sampling => DefenseKind::Sampling,
                DefenseChoice::Full => DefenseKind::SamplingSwapping,
            };
            let defense_name = cfg.defense.name();
            let recorder = TraceRecorder::new();
            let mut fed = Federation::builder(&split.train)
                .client_model(ModelKind::NeuMf)
                .server_model(ModelKind::Ngcf)
                .hyper(scaled_hyper(scale))
                .config(cfg)
                .observer(recorder.clone())
                .build()
                .map_err(|e| e.to_string())?;
            fed.run();
            let f1 = TopGuessAttack::default().mean_f1(
                fed.protocol()
                    .last_uploads()
                    .iter()
                    .map(|u| (u.predictions.as_slice(), u.audit_positives.as_slice())),
            );
            let report = fed.evaluate(&split.train, &split.test, 20);
            if json {
                let out = PrivacyJson {
                    defense: defense_name.to_string(),
                    attack_f1: f1,
                    dataset: dataset.name().to_string(),
                    seed,
                    trace: recorder.trace(),
                    report,
                    communication: fed.ledger().summary(),
                };
                println!("{}", serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?);
            } else {
                println!("defense: {defense_name}");
                println!("top-guess attack F1: {f1:.4} (lower = better privacy)");
                println!("{report}");
            }
            Ok(())
        }
        Command::Serve {
            dataset,
            client,
            server,
            rounds,
            scale,
            seed,
            k,
            port,
            participation,
            deadline_ms,
            gather_ms,
            json,
        } => {
            let split = load_split(dataset, scale, seed);
            let opts = NetServerOptions {
                cfg: net_config(scale, seed, rounds, participation),
                client_kind: client,
                server_kind: server,
                hyper: scaled_hyper(scale),
                round_deadline: Duration::from_millis(deadline_ms),
                gather_timeout: Duration::from_millis(gather_ms),
                verbose: true,
            };
            let endpoint = tcp::serve(("127.0.0.1", port))
                .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
            // the smoke tests (and humans scripting ephemeral ports) parse
            // this line, so it goes out before anything blocks
            eprintln!("listening on {}", endpoint.local_addr);
            eprintln!(
                "serving ptf-fedrec on {} ({} clients, {} items, {} rounds)",
                dataset.name(),
                split.train.num_users(),
                split.train.num_items(),
                opts.cfg.rounds,
            );
            let (report, trained) =
                run_server(&split.train, &endpoint.events, &opts).map_err(|e| e.to_string())?;
            let ranking = evaluate_model(trained.model(), &split.train, &split.test, k);
            if json {
                let out = ServeJson {
                    dataset: dataset.name().to_string(),
                    seed,
                    trace: report.trace,
                    report: ranking,
                    communication: report.communication,
                    stragglers: report.stragglers,
                    connections: report.connections,
                };
                println!("{}", serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?);
            } else {
                println!("{ranking}");
                println!(
                    "communication: {} per client-round (total {})",
                    format_bytes(report.communication.avg_client_bytes_per_round),
                    format_bytes(report.communication.total_bytes as f64)
                );
                println!(
                    "connections: {}, stragglers dropped: {}",
                    report.connections,
                    report.stragglers.len()
                );
                for s in &report.stragglers {
                    println!("  round {:>3}: dropped client {}", s.round, s.client);
                }
            }
            Ok(())
        }
        Command::Client {
            addr,
            dataset,
            client,
            server,
            rounds,
            scale,
            seed,
            ids,
            participation,
            straggle_round,
            straggle_ms,
            json,
        } => {
            let split = load_split(dataset, scale, seed);
            let fleet = split.train.num_users() as u32;
            let ids: Vec<u32> = match ids {
                Some((lo, hi)) => (lo..=hi).collect(),
                None => (0..fleet).collect(),
            };
            let opts = ShardOptions {
                cfg: net_config(scale, seed, rounds, participation),
                client_kind: client,
                server_kind: server,
                hyper: scaled_hyper(scale),
                ids,
                straggle: straggle_round
                    .map(|round| Straggle { round, delay: Duration::from_millis(straggle_ms) }),
            };
            eprintln!(
                "hosting clients {}..={} of {} on {}",
                opts.ids.first().copied().unwrap_or(0),
                opts.ids.last().copied().unwrap_or(0),
                fleet,
                addr,
            );
            let mut conn = tcp::connect(addr.as_str())
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            let summary = run_shard(&split.train, &mut conn, &opts).map_err(|e| e.to_string())?;
            if json {
                let out = ClientJson { dataset: dataset.name().to_string(), seed, addr, summary };
                println!("{}", serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?);
            } else {
                println!(
                    "shard done: {} clients, {} uploads, {} dropped, {} rounds, {} up / {} down",
                    summary.clients,
                    summary.participations,
                    summary.dropped,
                    summary.rounds_finished,
                    format_bytes(summary.bytes_up as f64),
                    format_bytes(summary.bytes_down as f64),
                );
            }
            Ok(())
        }
        Command::Generate { dataset, out, scale, seed } => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let data = dataset.generate(scale, &mut rng);
            std::fs::write(&out, data.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote {} ({})", out, DatasetStats::of(&data));
            Ok(())
        }
    }
}
