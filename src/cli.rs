//! Command-line interface for the `ptf` binary.
//!
//! Hand-rolled argument parsing (no CLI dependency) kept separate from the
//! binary so it is unit-testable. Supported commands:
//!
//! ```text
//! ptf stats    [--scale small|paper] [--seed N]
//! ptf train    --dataset ml100k|steam|gowalla [--protocol ptf|fcf|fedmf|metamf|centralized]
//!              [--client M] [--server M] [--rounds N] [--scale S] [--seed N] [--k K]
//!              [--threads N] [--json]
//! ptf privacy  --dataset D [--defense none|ldp|sampling|full] [--epsilon E]
//!              [--threads N] [--json]
//! ptf generate --dataset D --out FILE [--scale S] [--seed N]
//! ```

use ptf_data::{DatasetPreset, Scale};
use ptf_models::ModelKind;

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Print Table II style statistics of the three synthetic presets.
    Stats { scale: Scale, seed: u64 },
    /// Run a federated protocol and report metrics + traffic.
    Train {
        dataset: DataChoice,
        /// Which protocol drives the run (all share one engine code path).
        protocol: ProtocolChoice,
        client: ModelKind,
        server: ModelKind,
        rounds: Option<u32>,
        scale: Scale,
        seed: u64,
        k: usize,
        /// Worker threads for the parallel client phase (`0` = every
        /// hardware thread, the default). Runs are bit-identical at any
        /// value.
        threads: usize,
        /// Write the trained model's checkpoint here after training.
        save: Option<String>,
        /// Per-client storage representation policy.
        storage: StorageChoice,
        /// Evict cold embedding rows every N local rounds (`0` = never).
        evict_interval: u32,
        /// Row budget an eviction pass trims each client back to.
        evict_budget: usize,
        /// Override a scale preset's user count (scale datasets only).
        users: Option<usize>,
        /// Clients resident in memory at once during the parallel phase
        /// (`0` = the whole fleet; cohorting is what bounds peak heap).
        /// Defaults to the whole fleet on the in-RAM presets and 1024 on
        /// the scale presets.
        cohort: Option<usize>,
        /// Exact number of participants sampled per round (scale
        /// datasets only; default 64 there).
        participants: Option<usize>,
        /// Durable checkpoint directory (written every
        /// `--checkpoint-every` rounds and at the end of the run).
        checkpoint: Option<String>,
        /// Commit a checkpoint every N completed rounds (`0` = only at
        /// the end of the run).
        checkpoint_every: u32,
        /// Resume from `--checkpoint` instead of starting from round 0.
        resume: bool,
        /// Stop (with a checkpoint, if configured) after N completed
        /// rounds — the kill half of kill-and-resume tests.
        halt_after: Option<u32>,
        /// Emit the run as machine-readable JSON on stdout.
        json: bool,
    },
    /// Run the Top-Guess privacy audit under one defense.
    Privacy {
        dataset: DatasetPreset,
        defense: DefenseChoice,
        epsilon: f64,
        scale: Scale,
        seed: u64,
        /// Worker threads for the parallel client phase (`0` = all).
        threads: usize,
        /// Emit the audit as machine-readable JSON on stdout.
        json: bool,
    },
    /// Export a synthetic dataset as JSON.
    Generate { dataset: DatasetPreset, out: String, scale: Scale, seed: u64 },
    /// Run the networked round server (`ptf serve`).
    Serve {
        dataset: DatasetPreset,
        client: ModelKind,
        server: ModelKind,
        rounds: Option<u32>,
        scale: Scale,
        seed: u64,
        k: usize,
        /// TCP port to bind on 127.0.0.1 (`0` = ephemeral; the bound
        /// address is printed to stderr).
        port: u16,
        /// Fraction of trainable clients sampled per round (must match
        /// the clients' `--participation`).
        participation: f64,
        /// Per-round upload deadline; clients past it are dropped for
        /// that round.
        deadline_ms: u64,
        /// How long to wait for the full fleet to connect before
        /// giving up.
        gather_ms: u64,
        /// Emit the run as machine-readable JSON on stdout.
        json: bool,
    },
    /// Run a networked client shard (`ptf client`).
    Client {
        /// Server address, e.g. `127.0.0.1:7878`.
        addr: String,
        dataset: DatasetPreset,
        client: ModelKind,
        server: ModelKind,
        rounds: Option<u32>,
        scale: Scale,
        seed: u64,
        /// Inclusive client-id range `A-B` (or a single id `A`) this
        /// process hosts; `None` hosts the whole fleet.
        ids: Option<(u32, u32)>,
        /// Must match the server's `--participation`.
        participation: f64,
        /// Test/chaos hook: before uploading in this round, sleep
        /// `--straggle-ms` (the server drops the shard for that round).
        straggle_round: Option<u32>,
        straggle_ms: u64,
        /// Emit the shard summary as machine-readable JSON on stdout.
        json: bool,
    },
    /// Print usage.
    Help,
}

/// What `ptf train --dataset` names: a Table II synthetic preset or a
/// streamed million-user scale preset (`ptf_data::ScaleConfig`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataChoice {
    /// One of the paper's three synthetic presets (materialized in RAM).
    Preset(DatasetPreset),
    /// A `ScaleConfig` preset name (`scale-10k`/`scale-100k`/`scale-1m`),
    /// streamed to an on-disk CSR arena instead of materialized.
    Scale(&'static str),
}

impl DataChoice {
    /// Display name of the dataset (the `dataset` field in `--json`).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Preset(p) => p.name(),
            Self::Scale(name) => name,
        }
    }
}

/// CLI-level storage selector (maps onto `ptf_core::StorageMode`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageChoice {
    /// Per-client density heuristic (the default).
    Auto,
    /// Force item-scoped tables on every client.
    Sparse,
    /// Force full tables on every client.
    Dense,
}

/// CLI-level defense selector (maps onto `ptf_core::DefenseKind`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefenseChoice {
    None,
    Ldp,
    Sampling,
    Full,
}

/// CLI-level protocol selector — every variant runs through the same
/// `ptf_federated::FederatedProtocol` engine path in the binary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolChoice {
    /// PTF-FedRec itself (default).
    Ptf,
    Fcf,
    FedMf,
    MetaMf,
    Centralized,
}

pub const USAGE: &str = "\
ptf — PTF-FedRec: parameter transmission-free federated recommendation

USAGE:
    ptf stats    [--scale small|paper] [--seed N]
    ptf train    --dataset ml100k|steam|gowalla|scale-10k|scale-100k|scale-1m
                 [--protocol ptf|fcf|fedmf|metamf|centralized]
                 [--client neumf|ngcf|lightgcn|mf] [--server neumf|ngcf|lightgcn|mf]
                 [--rounds N] [--scale S] [--seed N] [--k K] [--threads N]
                 [--storage auto|sparse|dense] [--evict-interval N]
                 [--evict-budget N] [--users N] [--cohort N] [--participants N]
                 [--checkpoint DIR] [--checkpoint-every N] [--resume]
                 [--halt-after N] [--save checkpoint.json] [--json]
    ptf privacy  --dataset D [--defense none|ldp|sampling|full] [--epsilon E]
                 [--scale S] [--seed N] [--threads N] [--json]
    ptf generate --dataset D --out FILE [--scale S] [--seed N]
    ptf serve    --dataset D [--port P] [--client M] [--server M] [--rounds N]
                 [--scale S] [--seed N] [--k K] [--participation F]
                 [--deadline-ms N] [--gather-ms N] [--json]
    ptf client   --addr HOST:PORT --dataset D [--ids A-B] [--client M]
                 [--server M] [--rounds N] [--scale S] [--seed N]
                 [--participation F] [--straggle-round N] [--straggle-ms N]
                 [--json]

`--client`/`--server` select the model architectures for the ptf protocol;
centralized trains the --server architecture (ignoring --client), and the
MF-family baselines (fcf, fedmf, metamf) use their paper dimensions and
ignore both. `--json` prints {trace, report, communication} for tooling.
`--threads N` sizes the parallel client scheduler (default: every hardware
thread); with the same seed the output is byte-identical at any N.
`--storage` picks the per-client table representation (auto = density
heuristic); `--evict-interval`/`--evict-budget` bound client memory by
resetting cold embedding rows every N local rounds.

The `scale-*` datasets stream a deterministic synthetic fleet
(10k/100k/1M users; `--users N` overrides) into an on-disk CSR arena and
train with cohort scheduling: `--cohort N` clients are resident at once
(default 1024 there; `0` = whole fleet), `--participants N` are sampled
per round (default 64), client state lives in per-client envelopes on
disk, and ranking evaluation is skipped. `--cohort` also works on the
in-RAM presets. `--checkpoint DIR` makes any ptf-protocol cohort run
durable: a crash-safe commit every `--checkpoint-every N` rounds (and at
the end), resumed with `--resume` to a byte-identical trace;
`--halt-after N` stops early after N rounds for kill-and-resume testing.

`serve`/`client` run the same protocol over TCP: the server binds
127.0.0.1:PORT (default 7878, 0 = ephemeral — the bound address is
printed to stderr) and waits for every client id to connect; client
processes host `--ids A-B` each (default: the whole fleet). Both sides
must agree on dataset, scale, seed, rounds, models, and participation —
a config-fingerprint handshake rejects drift. With the same seed the
run's trace is byte-identical to `ptf train`. See docs/wire-protocol.md.
";

fn parse_dataset(s: &str) -> Result<DatasetPreset, String> {
    match s.to_ascii_lowercase().as_str() {
        "ml100k" | "ml-100k" | "movielens" => Ok(DatasetPreset::MovieLens100K),
        "steam" | "steam200k" | "steam-200k" => Ok(DatasetPreset::Steam200K),
        "gowalla" => Ok(DatasetPreset::Gowalla),
        other => Err(format!("unknown dataset {other:?} (ml100k|steam|gowalla)")),
    }
}

/// `--dataset` for `train`: the Table II presets plus the streamed scale
/// presets. The canonical scale names match `ScaleConfig::preset`.
fn parse_data(s: &str) -> Result<DataChoice, String> {
    match s.to_ascii_lowercase().as_str() {
        "scale-10k" | "scale10k" => Ok(DataChoice::Scale("scale-10k")),
        "scale-100k" | "scale100k" => Ok(DataChoice::Scale("scale-100k")),
        "scale-1m" | "scale1m" => Ok(DataChoice::Scale("scale-1m")),
        _ => parse_dataset(s).map(DataChoice::Preset).map_err(|_| {
            format!("unknown dataset {s:?} (ml100k|steam|gowalla|scale-10k|scale-100k|scale-1m)")
        }),
    }
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s.to_ascii_lowercase().as_str() {
        "small" => Ok(Scale::Small),
        "paper" => Ok(Scale::Paper),
        other => Err(format!("unknown scale {other:?} (small|paper)")),
    }
}

fn parse_model(s: &str) -> Result<ModelKind, String> {
    ModelKind::parse(s).ok_or_else(|| format!("unknown model {s:?} (neumf|ngcf|lightgcn|mf)"))
}

fn parse_storage(s: &str) -> Result<StorageChoice, String> {
    match s.to_ascii_lowercase().as_str() {
        "auto" => Ok(StorageChoice::Auto),
        "sparse" | "scoped" => Ok(StorageChoice::Sparse),
        "dense" | "full" => Ok(StorageChoice::Dense),
        other => Err(format!("unknown storage {other:?} (auto|sparse|dense)")),
    }
}

fn parse_defense(s: &str) -> Result<DefenseChoice, String> {
    match s.to_ascii_lowercase().as_str() {
        "none" => Ok(DefenseChoice::None),
        "ldp" => Ok(DefenseChoice::Ldp),
        "sampling" => Ok(DefenseChoice::Sampling),
        "full" | "sampling+swapping" => Ok(DefenseChoice::Full),
        other => Err(format!("unknown defense {other:?} (none|ldp|sampling|full)")),
    }
}

fn parse_protocol(s: &str) -> Result<ProtocolChoice, String> {
    match s.to_ascii_lowercase().as_str() {
        "ptf" | "ptf-fedrec" | "ptffedrec" => Ok(ProtocolChoice::Ptf),
        "fcf" => Ok(ProtocolChoice::Fcf),
        "fedmf" => Ok(ProtocolChoice::FedMf),
        "metamf" => Ok(ProtocolChoice::MetaMf),
        "centralized" | "central" => Ok(ProtocolChoice::Centralized),
        other => Err(format!("unknown protocol {other:?} (ptf|fcf|fedmf|metamf|centralized)")),
    }
}

/// Parsed `--key value` options plus valueless `--flag` switches.
struct Options {
    values: std::collections::HashMap<String, String>,
    flags: std::collections::HashSet<String>,
}

impl Options {
    fn get(&self, key: &str) -> Option<&String> {
        self.values.get(key)
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }
}

/// Consumes `--key value` options and valueless `--flag` switches into a
/// lookup, rejecting unknowns and duplicates.
fn parse_options(args: &[String], allowed: &[&str], flags: &[&str]) -> Result<Options, String> {
    let mut out = Options {
        values: std::collections::HashMap::new(),
        flags: std::collections::HashSet::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("unexpected argument {key:?}"));
        };
        if flags.contains(&name) {
            if !out.flags.insert(name.to_string()) {
                return Err(format!("--{name} given twice"));
            }
            i += 1;
            continue;
        }
        if !allowed.contains(&name) {
            return Err(format!("unknown option --{name}"));
        }
        let value = args.get(i + 1).ok_or_else(|| format!("--{name} needs a value"))?.clone();
        if out.values.insert(name.to_string(), value).is_some() {
            return Err(format!("--{name} given twice"));
        }
        i += 2;
    }
    Ok(out)
}

/// Parses a full argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "stats" => {
            let opts = parse_options(rest, &["scale", "seed"], &[])?;
            Ok(Command::Stats {
                scale: opts
                    .get("scale")
                    .map(|s| parse_scale(s))
                    .transpose()?
                    .unwrap_or(Scale::Small),
                seed: parse_seed(&opts)?,
            })
        }
        "train" => {
            let opts = parse_options(
                rest,
                &[
                    "dataset",
                    "protocol",
                    "client",
                    "server",
                    "rounds",
                    "scale",
                    "seed",
                    "k",
                    "threads",
                    "save",
                    "storage",
                    "evict-interval",
                    "evict-budget",
                    "users",
                    "cohort",
                    "participants",
                    "checkpoint",
                    "checkpoint-every",
                    "halt-after",
                ],
                &["json", "resume"],
            )?;
            Ok(Command::Train {
                dataset: parse_data(opts.get("dataset").ok_or("train requires --dataset")?)?,
                protocol: opts
                    .get("protocol")
                    .map(|s| parse_protocol(s))
                    .transpose()?
                    .unwrap_or(ProtocolChoice::Ptf),
                client: opts
                    .get("client")
                    .map(|s| parse_model(s))
                    .transpose()?
                    .unwrap_or(ModelKind::NeuMf),
                server: opts
                    .get("server")
                    .map(|s| parse_model(s))
                    .transpose()?
                    .unwrap_or(ModelKind::Ngcf),
                rounds: opts
                    .get("rounds")
                    .map(|s| s.parse().map_err(|_| format!("bad --rounds {s:?}")))
                    .transpose()?,
                scale: opts
                    .get("scale")
                    .map(|s| parse_scale(s))
                    .transpose()?
                    .unwrap_or(Scale::Small),
                seed: parse_seed(&opts)?,
                k: opts
                    .get("k")
                    .map(|s| s.parse().map_err(|_| format!("bad --k {s:?}")))
                    .transpose()?
                    .unwrap_or(20),
                threads: parse_threads(&opts)?,
                save: opts.get("save").cloned(),
                storage: opts
                    .get("storage")
                    .map(|s| parse_storage(s))
                    .transpose()?
                    .unwrap_or(StorageChoice::Auto),
                evict_interval: opts
                    .get("evict-interval")
                    .map(|s| s.parse().map_err(|_| format!("bad --evict-interval {s:?}")))
                    .transpose()?
                    .unwrap_or(0),
                evict_budget: opts
                    .get("evict-budget")
                    .map(|s| s.parse().map_err(|_| format!("bad --evict-budget {s:?}")))
                    .transpose()?
                    .unwrap_or(0),
                users: opts
                    .get("users")
                    .map(|s| s.parse().map_err(|_| format!("bad --users {s:?}")))
                    .transpose()?,
                cohort: opts
                    .get("cohort")
                    .map(|s| s.parse().map_err(|_| format!("bad --cohort {s:?}")))
                    .transpose()?,
                participants: opts
                    .get("participants")
                    .map(|s| s.parse().map_err(|_| format!("bad --participants {s:?}")))
                    .transpose()?,
                checkpoint: opts.get("checkpoint").cloned(),
                checkpoint_every: opts
                    .get("checkpoint-every")
                    .map(|s| s.parse().map_err(|_| format!("bad --checkpoint-every {s:?}")))
                    .transpose()?
                    .unwrap_or(0),
                resume: opts.flag("resume"),
                halt_after: opts
                    .get("halt-after")
                    .map(|s| s.parse().map_err(|_| format!("bad --halt-after {s:?}")))
                    .transpose()?,
                json: opts.flag("json"),
            })
        }
        "privacy" => {
            let opts = parse_options(
                rest,
                &["dataset", "defense", "epsilon", "scale", "seed", "threads"],
                &["json"],
            )?;
            Ok(Command::Privacy {
                dataset: parse_dataset(opts.get("dataset").ok_or("privacy requires --dataset")?)?,
                defense: opts
                    .get("defense")
                    .map(|s| parse_defense(s))
                    .transpose()?
                    .unwrap_or(DefenseChoice::Full),
                epsilon: opts
                    .get("epsilon")
                    .map(|s| s.parse().map_err(|_| format!("bad --epsilon {s:?}")))
                    .transpose()?
                    .unwrap_or(5.0),
                scale: opts
                    .get("scale")
                    .map(|s| parse_scale(s))
                    .transpose()?
                    .unwrap_or(Scale::Small),
                seed: parse_seed(&opts)?,
                threads: parse_threads(&opts)?,
                json: opts.flag("json"),
            })
        }
        "generate" => {
            let opts = parse_options(rest, &["dataset", "out", "scale", "seed"], &[])?;
            Ok(Command::Generate {
                dataset: parse_dataset(opts.get("dataset").ok_or("generate requires --dataset")?)?,
                out: opts.get("out").ok_or("generate requires --out")?.clone(),
                scale: opts
                    .get("scale")
                    .map(|s| parse_scale(s))
                    .transpose()?
                    .unwrap_or(Scale::Small),
                seed: parse_seed(&opts)?,
            })
        }
        "serve" => {
            let opts = parse_options(
                rest,
                &[
                    "dataset",
                    "client",
                    "server",
                    "rounds",
                    "scale",
                    "seed",
                    "k",
                    "port",
                    "participation",
                    "deadline-ms",
                    "gather-ms",
                ],
                &["json"],
            )?;
            Ok(Command::Serve {
                dataset: parse_dataset(opts.get("dataset").ok_or("serve requires --dataset")?)?,
                client: opts
                    .get("client")
                    .map(|s| parse_model(s))
                    .transpose()?
                    .unwrap_or(ModelKind::NeuMf),
                server: opts
                    .get("server")
                    .map(|s| parse_model(s))
                    .transpose()?
                    .unwrap_or(ModelKind::Ngcf),
                rounds: opts
                    .get("rounds")
                    .map(|s| s.parse().map_err(|_| format!("bad --rounds {s:?}")))
                    .transpose()?,
                scale: opts
                    .get("scale")
                    .map(|s| parse_scale(s))
                    .transpose()?
                    .unwrap_or(Scale::Small),
                seed: parse_seed(&opts)?,
                k: opts
                    .get("k")
                    .map(|s| s.parse().map_err(|_| format!("bad --k {s:?}")))
                    .transpose()?
                    .unwrap_or(20),
                port: opts
                    .get("port")
                    .map(|s| s.parse().map_err(|_| format!("bad --port {s:?}")))
                    .transpose()?
                    .unwrap_or(7878),
                participation: parse_participation(&opts)?,
                deadline_ms: opts
                    .get("deadline-ms")
                    .map(|s| s.parse().map_err(|_| format!("bad --deadline-ms {s:?}")))
                    .transpose()?
                    .unwrap_or(30_000),
                gather_ms: opts
                    .get("gather-ms")
                    .map(|s| s.parse().map_err(|_| format!("bad --gather-ms {s:?}")))
                    .transpose()?
                    .unwrap_or(30_000),
                json: opts.flag("json"),
            })
        }
        "client" => {
            let opts = parse_options(
                rest,
                &[
                    "addr",
                    "dataset",
                    "client",
                    "server",
                    "rounds",
                    "scale",
                    "seed",
                    "ids",
                    "participation",
                    "straggle-round",
                    "straggle-ms",
                ],
                &["json"],
            )?;
            Ok(Command::Client {
                addr: opts.get("addr").ok_or("client requires --addr HOST:PORT")?.clone(),
                dataset: parse_dataset(opts.get("dataset").ok_or("client requires --dataset")?)?,
                client: opts
                    .get("client")
                    .map(|s| parse_model(s))
                    .transpose()?
                    .unwrap_or(ModelKind::NeuMf),
                server: opts
                    .get("server")
                    .map(|s| parse_model(s))
                    .transpose()?
                    .unwrap_or(ModelKind::Ngcf),
                rounds: opts
                    .get("rounds")
                    .map(|s| s.parse().map_err(|_| format!("bad --rounds {s:?}")))
                    .transpose()?,
                scale: opts
                    .get("scale")
                    .map(|s| parse_scale(s))
                    .transpose()?
                    .unwrap_or(Scale::Small),
                seed: parse_seed(&opts)?,
                ids: opts.get("ids").map(|s| parse_ids(s)).transpose()?,
                participation: parse_participation(&opts)?,
                straggle_round: opts
                    .get("straggle-round")
                    .map(|s| s.parse().map_err(|_| format!("bad --straggle-round {s:?}")))
                    .transpose()?,
                straggle_ms: opts
                    .get("straggle-ms")
                    .map(|s| s.parse().map_err(|_| format!("bad --straggle-ms {s:?}")))
                    .transpose()?
                    .unwrap_or(0),
                json: opts.flag("json"),
            })
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

/// `--ids A-B` (inclusive) or a single id `--ids A`.
fn parse_ids(s: &str) -> Result<(u32, u32), String> {
    let bad = || format!("bad --ids {s:?} (expected A-B or a single id A)");
    let (lo, hi) = match s.split_once('-') {
        Some((lo, hi)) => (lo, hi),
        None => (s, s),
    };
    let lo: u32 = lo.trim().parse().map_err(|_| bad())?;
    let hi: u32 = hi.trim().parse().map_err(|_| bad())?;
    if lo > hi {
        return Err(format!("bad --ids {s:?}: {lo} > {hi}"));
    }
    Ok((lo, hi))
}

/// `--participation F` in (0, 1]; the default `1.0` samples every client.
fn parse_participation(opts: &Options) -> Result<f64, String> {
    let f = opts
        .get("participation")
        .map(|s| s.parse::<f64>().map_err(|_| format!("bad --participation {s:?}")))
        .transpose()?
        .unwrap_or(1.0);
    if !(f > 0.0 && f <= 1.0) {
        return Err(format!("--participation must be in (0, 1], got {f}"));
    }
    Ok(f)
}

fn parse_seed(opts: &Options) -> Result<u64, String> {
    opts.get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed {s:?}")))
        .transpose()
        .map(|o| o.unwrap_or(2024))
}

/// `--threads N`; the default `0` means "every hardware thread".
fn parse_threads(opts: &Options) -> Result<usize, String> {
    opts.get("threads")
        .map(|s| s.parse().map_err(|_| format!("bad --threads {s:?}")))
        .transpose()
        .map(|o| o.unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn train_with_defaults() {
        let cmd = parse(&argv("train --dataset ml100k")).unwrap();
        assert_eq!(
            cmd,
            Command::Train {
                dataset: DataChoice::Preset(DatasetPreset::MovieLens100K),
                protocol: ProtocolChoice::Ptf,
                client: ModelKind::NeuMf,
                server: ModelKind::Ngcf,
                rounds: None,
                scale: Scale::Small,
                seed: 2024,
                k: 20,
                threads: 0,
                save: None,
                storage: StorageChoice::Auto,
                evict_interval: 0,
                evict_budget: 0,
                users: None,
                cohort: None,
                participants: None,
                checkpoint: None,
                checkpoint_every: 0,
                resume: false,
                halt_after: None,
                json: false,
            }
        );
    }

    #[test]
    fn storage_and_eviction_flags_parse() {
        match parse(&argv(
            "train --dataset ml100k --storage sparse --evict-interval 5 --evict-budget 512",
        ))
        .unwrap()
        {
            Command::Train { storage, evict_interval, evict_budget, .. } => {
                assert_eq!(storage, StorageChoice::Sparse);
                assert_eq!(evict_interval, 5);
                assert_eq!(evict_budget, 512);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        for (s, want) in [
            ("auto", StorageChoice::Auto),
            ("dense", StorageChoice::Dense),
            ("full", StorageChoice::Dense),
            ("scoped", StorageChoice::Sparse),
        ] {
            match parse(&argv(&format!("train --dataset ml100k --storage {s}"))).unwrap() {
                Command::Train { storage, .. } => assert_eq!(storage, want, "{s}"),
                other => panic!("wrong parse: {other:?}"),
            }
        }
        let err = parse(&argv("train --dataset ml100k --storage ram")).unwrap_err();
        assert!(err.contains("unknown storage"), "{err}");
        let err = parse(&argv("train --dataset ml100k --evict-interval soon")).unwrap_err();
        assert!(err.contains("--evict-interval"), "{err}");
    }

    #[test]
    fn train_full_options() {
        let cmd = parse(&argv(
            "train --dataset gowalla --client lightgcn --server neumf --rounds 7 --scale paper --seed 9 --k 10",
        ))
        .unwrap();
        match cmd {
            Command::Train { dataset, client, server, rounds, scale, seed, k, save, .. } => {
                assert_eq!(dataset, DataChoice::Preset(DatasetPreset::Gowalla));
                assert_eq!(save, None);
                assert_eq!(client, ModelKind::LightGcn);
                assert_eq!(server, ModelKind::NeuMf);
                assert_eq!(rounds, Some(7));
                assert_eq!(scale, Scale::Paper);
                assert_eq!(seed, 9);
                assert_eq!(k, 10);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn threads_option_parses_on_train_and_privacy() {
        match parse(&argv("train --dataset ml100k --threads 4")).unwrap() {
            Command::Train { threads, .. } => assert_eq!(threads, 4),
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("privacy --dataset steam --threads 2")).unwrap() {
            Command::Privacy { threads, .. } => assert_eq!(threads, 2),
            other => panic!("wrong parse: {other:?}"),
        }
        // default: 0 = every hardware thread
        match parse(&argv("privacy --dataset steam")).unwrap() {
            Command::Privacy { threads, .. } => assert_eq!(threads, 0),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("train --dataset ml100k --threads many"))
            .unwrap_err()
            .contains("--threads"));
    }

    #[test]
    fn scale_datasets_and_cohort_flags_parse() {
        for (s, want) in
            [("scale-10k", "scale-10k"), ("SCALE-100K", "scale-100k"), ("scale1m", "scale-1m")]
        {
            match parse(&argv(&format!("train --dataset {s}"))).unwrap() {
                Command::Train { dataset, .. } => {
                    assert_eq!(dataset, DataChoice::Scale(want), "{s}")
                }
                other => panic!("wrong parse: {other:?}"),
            }
        }
        match parse(&argv("train --dataset scale-10k --users 5000 --cohort 256 --participants 32"))
            .unwrap()
        {
            Command::Train { users, cohort, participants, .. } => {
                assert_eq!(users, Some(5000));
                assert_eq!(cohort, Some(256));
                assert_eq!(participants, Some(32));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // unset: defaults are decided by the binary per dataset kind
        match parse(&argv("train --dataset scale-1m")).unwrap() {
            Command::Train { users, cohort, participants, .. } => {
                assert_eq!(users, None);
                assert_eq!(cohort, None);
                assert_eq!(participants, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let err = parse(&argv("train --dataset scale-2g")).unwrap_err();
        assert!(err.contains("scale-1m"), "{err}");
    }

    #[test]
    fn checkpoint_flags_parse() {
        match parse(&argv(
            "train --dataset ml100k --checkpoint ckpt --checkpoint-every 2 --halt-after 3",
        ))
        .unwrap()
        {
            Command::Train { checkpoint, checkpoint_every, resume, halt_after, .. } => {
                assert_eq!(checkpoint.as_deref(), Some("ckpt"));
                assert_eq!(checkpoint_every, 2);
                assert!(!resume);
                assert_eq!(halt_after, Some(3));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // --resume is a valueless flag: it must not swallow the next option
        match parse(&argv("train --dataset ml100k --checkpoint ckpt --resume --rounds 4")).unwrap()
        {
            Command::Train { resume, rounds, .. } => {
                assert!(resume);
                assert_eq!(rounds, Some(4));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let err = parse(&argv("train --dataset ml100k --checkpoint-every soon")).unwrap_err();
        assert!(err.contains("--checkpoint-every"), "{err}");
    }

    #[test]
    fn train_requires_dataset() {
        let err = parse(&argv("train")).unwrap_err();
        assert!(err.contains("--dataset"), "{err}");
    }

    #[test]
    fn every_protocol_parses() {
        for (s, want) in [
            ("ptf", ProtocolChoice::Ptf),
            ("PTF-FedRec", ProtocolChoice::Ptf),
            ("fcf", ProtocolChoice::Fcf),
            ("fedmf", ProtocolChoice::FedMf),
            ("metamf", ProtocolChoice::MetaMf),
            ("centralized", ProtocolChoice::Centralized),
        ] {
            let cmd = parse(&argv(&format!("train --dataset ml100k --protocol {s}"))).unwrap();
            match cmd {
                Command::Train { protocol, .. } => assert_eq!(protocol, want, "{s}"),
                other => panic!("wrong parse: {other:?}"),
            }
        }
        let err = parse(&argv("train --dataset ml100k --protocol hogwarts")).unwrap_err();
        assert!(err.contains("unknown protocol"), "{err}");
    }

    #[test]
    fn json_is_a_valueless_flag() {
        match parse(&argv("train --dataset ml100k --json --rounds 2")).unwrap() {
            Command::Train { json, rounds, .. } => {
                assert!(json);
                assert_eq!(rounds, Some(2), "--json must not swallow the next option");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("privacy --dataset steam --json")).unwrap() {
            Command::Privacy { json, .. } => assert!(json),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("train --dataset ml100k --json --json"))
            .unwrap_err()
            .contains("twice"));
    }

    #[test]
    fn privacy_defense_parsing() {
        for (s, want) in [
            ("none", DefenseChoice::None),
            ("ldp", DefenseChoice::Ldp),
            ("sampling", DefenseChoice::Sampling),
            ("full", DefenseChoice::Full),
        ] {
            let cmd = parse(&argv(&format!("privacy --dataset steam --defense {s}"))).unwrap();
            match cmd {
                Command::Privacy { defense, .. } => assert_eq!(defense, want),
                other => panic!("wrong parse: {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_unknown_option_and_command() {
        assert!(parse(&argv("stats --bogus 1")).unwrap_err().contains("--bogus"));
        assert!(parse(&argv("frobnicate")).unwrap_err().contains("frobnicate"));
    }

    #[test]
    fn rejects_missing_value_and_duplicates() {
        assert!(parse(&argv("stats --seed")).unwrap_err().contains("needs a value"));
        assert!(parse(&argv("stats --seed 1 --seed 2")).unwrap_err().contains("twice"));
    }

    #[test]
    fn dataset_aliases() {
        for alias in ["ml100k", "ML-100K", "movielens"] {
            assert_eq!(parse_dataset(alias).unwrap(), DatasetPreset::MovieLens100K);
        }
    }

    #[test]
    fn generate_requires_out() {
        let err = parse(&argv("generate --dataset ml100k")).unwrap_err();
        assert!(err.contains("--out"), "{err}");
    }

    #[test]
    fn serve_with_defaults() {
        let cmd = parse(&argv("serve --dataset ml100k")).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                dataset: DatasetPreset::MovieLens100K,
                client: ModelKind::NeuMf,
                server: ModelKind::Ngcf,
                rounds: None,
                scale: Scale::Small,
                seed: 2024,
                k: 20,
                port: 7878,
                participation: 1.0,
                deadline_ms: 30_000,
                gather_ms: 30_000,
                json: false,
            }
        );
    }

    #[test]
    fn serve_full_options() {
        match parse(&argv(
            "serve --dataset steam --port 0 --client mf --server mf --rounds 3 \
             --participation 0.5 --deadline-ms 2000 --gather-ms 9000 --json",
        ))
        .unwrap()
        {
            Command::Serve {
                port, participation, deadline_ms, gather_ms, rounds, json, ..
            } => {
                assert_eq!(port, 0);
                assert_eq!(participation, 0.5);
                assert_eq!(deadline_ms, 2000);
                assert_eq!(gather_ms, 9000);
                assert_eq!(rounds, Some(3));
                assert!(json);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let err = parse(&argv("serve --dataset ml100k --participation 1.5")).unwrap_err();
        assert!(err.contains("--participation"), "{err}");
        let err = parse(&argv("serve")).unwrap_err();
        assert!(err.contains("--dataset"), "{err}");
    }

    #[test]
    fn client_requires_addr_and_parses_ids() {
        let err = parse(&argv("client --dataset ml100k")).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        match parse(&argv("client --addr 127.0.0.1:7878 --dataset ml100k --ids 3-9")).unwrap() {
            Command::Client { addr, ids, straggle_round, straggle_ms, .. } => {
                assert_eq!(addr, "127.0.0.1:7878");
                assert_eq!(ids, Some((3, 9)));
                assert_eq!(straggle_round, None);
                assert_eq!(straggle_ms, 0);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // a single id hosts exactly that client; omitted hosts the fleet
        match parse(&argv("client --addr h:1 --dataset ml100k --ids 5")).unwrap() {
            Command::Client { ids, .. } => assert_eq!(ids, Some((5, 5))),
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("client --addr h:1 --dataset ml100k")).unwrap() {
            Command::Client { ids, .. } => assert_eq!(ids, None),
            other => panic!("wrong parse: {other:?}"),
        }
        for bad in ["9-3", "a-b", "3-", "-3"] {
            let err = parse(&argv(&format!("client --addr h:1 --dataset ml100k --ids {bad}")))
                .unwrap_err();
            assert!(err.contains("--ids"), "{bad}: {err}");
        }
    }

    #[test]
    fn client_straggle_options_parse() {
        match parse(&argv(
            "client --addr h:1 --dataset ml100k --straggle-round 2 --straggle-ms 5000 --json",
        ))
        .unwrap()
        {
            Command::Client { straggle_round, straggle_ms, json, .. } => {
                assert_eq!(straggle_round, Some(2));
                assert_eq!(straggle_ms, 5000);
                assert!(json);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }
}

#[cfg(test)]
mod save_option_tests {
    use super::*;

    #[test]
    fn train_accepts_save_path() {
        let args: Vec<String> =
            "train --dataset ml100k --save out.json".split_whitespace().map(String::from).collect();
        match parse(&args).unwrap() {
            Command::Train { save, .. } => assert_eq!(save.as_deref(), Some("out.json")),
            other => panic!("wrong parse: {other:?}"),
        }
    }
}
