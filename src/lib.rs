//! # ptf-fedrec
//!
//! Facade crate for the PTF-FedRec reproduction ("Hide Your Model: A
//! Parameter Transmission-free Federated Recommender System", ICDE 2024).
//!
//! Everything lives in focused sub-crates; this crate re-exports them under
//! one roof so applications can depend on a single name:
//!
//! * [`tensor`] — dense/CSR matrices, reverse-mode autograd, Adam/SGD.
//! * [`data`] — implicit-feedback datasets, synthetic generators, splits.
//! * [`models`] — NeuMF, NGCF, LightGCN, MF recommenders.
//! * [`metrics`] — Recall@K, NDCG@K, F1 and friends.
//! * [`privacy`] — sampling/swapping defenses, LDP, the Top-Guess attack.
//! * [`comm`] — typed messages, wire sizes, communication ledger.
//! * [`federated`] — client registry, participation sampling, and the
//!   protocol-agnostic `FederatedProtocol` engine with `RoundObserver`
//!   hooks.
//! * [`core`] — the PTF-FedRec protocol itself plus the typed
//!   `Federation::builder` front door.
//! * [`baselines`] — centralized trainers, FCF, FedMF, MetaMF — all
//!   implementing the same `FederatedProtocol` as PTF-FedRec.
//! * [`net`] — networked deployment: wire protocol, loopback/TCP
//!   transports, the round server (`ptf serve`) and client runner
//!   (`ptf client`), bit-identical to the in-process engine.
//!
//! See `examples/quickstart.rs` for an end-to-end federated run through
//! the builder, `examples/communication_report.rs` for heterogeneous
//! protocols driven by one engine loop, and the `ptf` binary ([`cli`])
//! for a command-line front door.

pub mod cli;

pub use ptf_baselines as baselines;
pub use ptf_comm as comm;
pub use ptf_core as core;
pub use ptf_data as data;
pub use ptf_federated as federated;
pub use ptf_metrics as metrics;
pub use ptf_models as models;
pub use ptf_net as net;
pub use ptf_privacy as privacy;
pub use ptf_tensor as tensor;
